//! Per-connection sessions: the v1 lockstep loop, `HELLO` negotiation, and
//! the v2 multiplexed reader/writer split.
//!
//! Every connection starts in **v1** — one request line in, one response
//! line out, bit-for-bit the pre-v2 daemon — and stays there unless the
//! client negotiates v2 with `HELLO`. After the upgrade the connection
//! splits into:
//!
//! * a **reader** (this thread): parses tagged request lines, answers
//!   cheap verbs inline, and spawns a worker thread per `LOAD`/`SAMPLE`
//!   so slow requests never block the line;
//! * a single **writer** thread draining a bounded frame queue — the one
//!   place the socket is written, so interleaved frames from concurrent
//!   workers and feed producers never tear;
//! * per-request **workers**: `SAMPLE` streams incremental `chunk` frames
//!   straight off its [`EngineStream`](htsat_core::EngineStream) as rounds
//!   complete, then a terminal `done` (or `error` code `shutdown` when the
//!   daemon stops mid-stream).
//!
//! Backpressure is the frame queue's bound: a worker with a full queue
//! blocks (its own request slows down), while `SUBSCRIBE` feed producers
//! only ever `try_send` — a slow subscriber stalls itself, never the
//! trajectory (see [`crate::feed`]).

use crate::feed::Feed;
use crate::json::Json;
use crate::proto::{
    frame_chunk, frame_done, frame_error, frame_from_response, frame_reply, request_id, ErrorCode,
    ProtoError, Request, SampleParams, PROTOCOL_MAX, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::server::{
    admit_sample, dispatch_request, note_response, sample_tail_payload, AdmittedSample, ServerState,
};
use htsat_runtime::StopToken;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request line (a paper-scale inline DIMACS is a few
/// MiB; the cap only bounds a hostile endless line).
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Read-timeout used as the stop-flag poll interval on session sockets.
const READ_POLL: Duration = Duration::from_millis(50);

/// v2 writer-side socket timeout: a client that stops draining its socket
/// stalls its own frames for at most this long before the writer declares
/// the connection dead — a stuck client must not hold up daemon shutdown.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Bound of the per-connection v2 frame queue, in frames. Workers block
/// when it fills (per-request backpressure); feed producers skip instead.
const FRAME_QUEUE_DEPTH: usize = 64;

/// Reads `\n`-terminated lines from a stream with a read timeout,
/// preserving partially received lines across timeouts (a plain
/// `BufRead::read_line` would drop them) and checking a stop flag between
/// polls.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    /// Bytes of `pending` already scanned for a newline, so each appended
    /// chunk is scanned once (a full rescan per chunk would make multi-MiB
    /// inline-DIMACS lines quadratic).
    scanned: usize,
}

impl LineReader {
    /// Returns the next complete line (without guarantee of trailing
    /// newline trimming), or `None` on EOF / stop / protocol violation.
    fn next_line(&mut self, stop: &StopToken) -> Option<String> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(pos) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let line: Vec<u8> = self.pending.drain(..=self.scanned + pos).collect();
                self.scanned = 0;
                // Invalid UTF-8 cannot be valid protocol JSON; drop the
                // connection rather than guessing.
                return String::from_utf8(line).ok();
            }
            self.scanned = self.pending.len();
            if stop.is_stopped() || self.pending.len() > MAX_LINE_BYTES {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None, // client hung up (partial line dropped)
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return None,
            }
        }
    }
}

/// RAII level of concurrently open connections: the gauge rises on session
/// entry and falls on every exit path (EOF, shutdown, write failure).
struct ConnectionGauge;

impl ConnectionGauge {
    fn enter() -> ConnectionGauge {
        htsat_obs::gauge!("serve.connections.active").inc();
        ConnectionGauge
    }
}

impl Drop for ConnectionGauge {
    fn drop(&mut self) {
        htsat_obs::gauge!("serve.connections.active").dec();
    }
}

/// RAII level of in-flight worker requests (v1 blocking `SAMPLE`s and v2
/// `LOAD`/`SAMPLE` workers alike): the `serve.inflight` gauge.
struct InflightGauge;

impl InflightGauge {
    fn enter() -> InflightGauge {
        htsat_obs::gauge!("serve.inflight").inc();
        InflightGauge
    }
}

impl Drop for InflightGauge {
    fn drop(&mut self) {
        htsat_obs::gauge!("serve.inflight").dec();
    }
}

/// Serves one connection, starting in the v1 lockstep loop. A `HELLO`
/// negotiating version 2 hands the transport to [`session_v2`] and never
/// comes back.
pub(crate) fn session(stream: TcpStream, state: &Arc<ServerState>) {
    let _active = ConnectionGauge::enter();
    let _ = stream.set_nodelay(true);
    // Sessions must notice a daemon-wide shutdown even while idle in a
    // read: a read timeout turns the blocking read into a poll.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        pending: Vec::new(),
        scanned: 0,
    };
    loop {
        let Some(line) = reader.next_line(&state.stop) else {
            return;
        };
        htsat_obs::counter!("serve.bytes_in").add(line.len() as u64);
        if line.trim().is_empty() {
            continue;
        }
        let _span = htsat_obs::span!("serve.request");
        let (response, action) = dispatch_v1_line(&line, state);
        note_response(&response);
        let mut text = response.encode();
        text.push('\n');
        htsat_obs::counter!("serve.bytes_out").add(text.len() as u64);
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        match action {
            V1Action::Continue => {}
            V1Action::Shutdown => {
                // Acknowledge first, then stop the world: the master flag
                // ends the accept loop, the stop set cancels in-flight
                // streams on other sessions.
                state.stop.stop();
                state.requests.stop_all();
                return;
            }
            V1Action::UpgradeV2 => {
                drop(_span);
                return session_v2(reader, writer, state);
            }
        }
    }
}

/// What the v1 loop does after writing a response line.
enum V1Action {
    Continue,
    Shutdown,
    UpgradeV2,
}

/// Parses and executes one v1 request line, intercepting `HELLO` (version
/// negotiation is a session concern, not a dispatch one).
fn dispatch_v1_line(line: &str, state: &Arc<ServerState>) -> (Json, V1Action) {
    let msg = match Json::parse(line.trim_end()) {
        Ok(msg) => msg,
        Err(e) => {
            return (
                crate::proto::error_response(ErrorCode::BadJson, &format!("invalid JSON: {e}")),
                V1Action::Continue,
            )
        }
    };
    let request = match Request::decode(&msg) {
        Ok(request) => request,
        Err(ProtoError(e)) => {
            return (
                crate::proto::error_response(ErrorCode::BadRequest, &e),
                V1Action::Continue,
            )
        }
    };
    if let Request::Hello { version } = request {
        htsat_obs::counter!("serve.requests.hello").inc();
        let accepted = match version {
            PROTOCOL_V1 => V1Action::Continue,
            PROTOCOL_V2 => V1Action::UpgradeV2,
            other => {
                return (
                    crate::proto::error_response(
                        ErrorCode::BadRequest,
                        &format!(
                            "unsupported protocol version {other} (supported: \
                             {PROTOCOL_V1}..={PROTOCOL_MAX})"
                        ),
                    ),
                    V1Action::Continue,
                )
            }
        };
        return (
            crate::proto::ok_response(vec![
                ("version", version.into()),
                ("max_version", PROTOCOL_MAX.into()),
            ]),
            accepted,
        );
    }
    let (response, shutdown) = dispatch_request(request, state);
    (
        response,
        if shutdown {
            V1Action::Shutdown
        } else {
            V1Action::Continue
        },
    )
}

/// In-flight v2 requests of one connection: id → stop token. The reader
/// inserts before spawning a worker (so duplicate ids are caught
/// synchronously); the worker removes its own entry when it finishes.
type InflightMap = Arc<Mutex<HashMap<u64, StopToken>>>;

/// The v2 multiplexed loop: this thread keeps reading tagged requests, a
/// dedicated thread owns all writes, and `LOAD`/`SAMPLE` run on per-request
/// worker threads — concurrent requests on one connection complete out of
/// order.
fn session_v2(mut reader: LineReader, writer: TcpStream, state: &Arc<ServerState>) {
    // A stuck client must not wedge shutdown: bound every socket write.
    let _ = writer.set_write_timeout(Some(WRITE_TIMEOUT));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Json>(FRAME_QUEUE_DEPTH);
    let writer_handle = std::thread::Builder::new()
        .name("htsat-serve-writer".to_string())
        .spawn(move || writer_loop(writer, &rx))
        .expect("spawn writer thread");
    let inflight: InflightMap = Arc::new(Mutex::new(HashMap::new()));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut subs: HashMap<u64, Arc<Feed>> = HashMap::new();
    let mut shutdown = false;

    while let Some(line) = reader.next_line(&state.stop) {
        htsat_obs::counter!("serve.bytes_in").add(line.len() as u64);
        if line.trim().is_empty() {
            continue;
        }
        match handle_v2_line(&line, state, &tx, &inflight, &mut subs, &mut workers) {
            V2Action::Continue => {}
            V2Action::Shutdown => {
                shutdown = true;
                break;
            }
        }
        workers.retain(|w| !w.is_finished());
    }

    if shutdown {
        // Stop the world before joining this connection's workers, so the
        // in-flight streams cancel and emit their terminal `shutdown`
        // error frames while the writer is still draining.
        state.stop.stop();
        state.requests.stop_all();
    }
    // Cancel this connection's own in-flight streams (client hang-up) and
    // release its feed seats so producers drop their queue handles.
    for token in inflight.lock().expect("inflight poisoned").values() {
        token.stop();
    }
    for (sub, feed) in subs {
        feed.remove(sub);
    }
    for worker in workers {
        let _ = worker.join();
    }
    // All frame producers are gone; the writer drains the queue and exits.
    drop(tx);
    let _ = writer_handle.join();
}

/// What the v2 reader does after handling one line.
enum V2Action {
    Continue,
    Shutdown,
}

/// Sends a frame to the connection's writer, counting the error funnel for
/// failure frames. Blocking: the reader and workers accept backpressure
/// from their own connection's queue.
fn send_frame(tx: &SyncSender<Json>, frame: Json) {
    note_response(&frame);
    let _ = tx.send(frame);
}

/// Parses and executes one v2 request line on the reader thread.
fn handle_v2_line(
    line: &str,
    state: &Arc<ServerState>,
    tx: &SyncSender<Json>,
    inflight: &InflightMap,
    subs: &mut HashMap<u64, Arc<Feed>>,
    workers: &mut Vec<JoinHandle<()>>,
) -> V2Action {
    let msg = match Json::parse(line.trim_end()) {
        Ok(msg) => msg,
        Err(e) => {
            send_frame(
                tx,
                frame_error(None, ErrorCode::BadJson, &format!("invalid JSON: {e}")),
            );
            return V2Action::Continue;
        }
    };
    let id = match request_id(&msg) {
        Ok(Some(id)) => id,
        Ok(None) => {
            send_frame(
                tx,
                frame_error(None, ErrorCode::BadRequest, "v2 requests need an `id`"),
            );
            return V2Action::Continue;
        }
        Err(ProtoError(e)) => {
            send_frame(tx, frame_error(None, ErrorCode::BadRequest, &e));
            return V2Action::Continue;
        }
    };
    let request = match Request::decode(&msg) {
        Ok(request) => request,
        Err(ProtoError(e)) => {
            send_frame(tx, frame_error(Some(id), ErrorCode::BadRequest, &e));
            return V2Action::Continue;
        }
    };
    match request {
        Request::Hello { .. } => {
            htsat_obs::counter!("serve.requests.hello").inc();
            send_frame(
                tx,
                frame_error(
                    Some(id),
                    ErrorCode::BadRequest,
                    "protocol version already negotiated",
                ),
            );
        }
        Request::Status | Request::Stats { .. } | Request::Evict { .. } => {
            let _span = htsat_obs::span!("serve.request");
            let (response, _) = dispatch_request(request, state);
            send_frame(tx, frame_from_response(id, &response));
        }
        Request::Shutdown => {
            let _span = htsat_obs::span!("serve.request");
            let (response, _) = dispatch_request(request, state);
            send_frame(tx, frame_from_response(id, &response));
            return V2Action::Shutdown;
        }
        Request::Subscribe(params) => {
            let _span = htsat_obs::span!("serve.request");
            htsat_obs::counter!("serve.requests.subscribe").inc();
            match state.feeds.subscribe(state, &params, tx.clone()) {
                Ok((sub, feed)) => {
                    subs.insert(sub, feed);
                    send_frame(
                        tx,
                        frame_reply(
                            id,
                            vec![
                                ("sub", crate::proto::encode_u64_exact(sub)),
                                ("seed", crate::proto::encode_u64_exact(params.seed)),
                                ("credit", params.credit.into()),
                                ("chunk", params.chunk.into()),
                            ],
                        ),
                    );
                }
                Err((code, message)) => send_frame(tx, frame_error(Some(id), code, &message)),
            }
        }
        Request::Credit { sub, n } => {
            htsat_obs::counter!("serve.requests.credit").inc();
            match subs.get(&sub).and_then(|feed| feed.credit(sub, n)) {
                Some(total) => send_frame(
                    tx,
                    frame_reply(
                        id,
                        vec![
                            ("sub", crate::proto::encode_u64_exact(sub)),
                            ("credit", total.into()),
                        ],
                    ),
                ),
                None => send_frame(
                    tx,
                    frame_error(
                        Some(id),
                        ErrorCode::BadRequest,
                        &format!("unknown subscription `{sub}` (ended or never opened here)"),
                    ),
                ),
            }
        }
        Request::Unsubscribe { sub } => {
            htsat_obs::counter!("serve.requests.unsubscribe").inc();
            match subs.remove(&sub) {
                Some(feed) => {
                    feed.remove(sub);
                    send_frame(
                        tx,
                        frame_reply(
                            id,
                            vec![
                                ("sub", crate::proto::encode_u64_exact(sub)),
                                ("unsubscribed", true.into()),
                            ],
                        ),
                    );
                }
                None => send_frame(
                    tx,
                    frame_error(
                        Some(id),
                        ErrorCode::BadRequest,
                        &format!("unknown subscription `{sub}` (ended or never opened here)"),
                    ),
                ),
            }
        }
        Request::Load { .. } | Request::Sample(_) => {
            // Admission happens on the reader so a duplicate in-flight id
            // is rejected synchronously — before the next line is read —
            // without touching the existing stream.
            let mut map = inflight.lock().expect("inflight poisoned");
            if map.contains_key(&id) {
                drop(map);
                send_frame(
                    tx,
                    frame_error(
                        Some(id),
                        ErrorCode::BadRequest,
                        &format!("duplicate in-flight `id` {id}"),
                    ),
                );
                return V2Action::Continue;
            }
            // SAMPLE workers get a daemon-registered token (their streams
            // must cancel on shutdown); LOAD is not cancellable and gets a
            // local one, used only to interrupt nothing.
            let token = match request {
                Request::Sample(_) => state.requests.issue(),
                _ => StopToken::new(),
            };
            map.insert(id, token.clone());
            htsat_obs::histogram!("serve.multiplex_depth").record(map.len() as u64);
            drop(map);
            let worker_state = state.clone();
            let worker_tx = tx.clone();
            let worker_inflight = inflight.clone();
            let handle = std::thread::Builder::new()
                .name("htsat-serve-worker".to_string())
                .spawn(move || {
                    let _inflight_level = InflightGauge::enter();
                    let _span = htsat_obs::span!("serve.request");
                    match request {
                        Request::Sample(params) => {
                            sample_worker(&worker_state, &worker_tx, id, &params, &token);
                        }
                        request => {
                            let (response, _) = dispatch_request(request, &worker_state);
                            send_frame(&worker_tx, frame_from_response(id, &response));
                        }
                    }
                    worker_inflight
                        .lock()
                        .expect("inflight poisoned")
                        .remove(&id);
                })
                .expect("spawn worker thread");
            workers.push(handle);
        }
    }
    V2Action::Continue
}

/// Streams one v2 `SAMPLE`: `chunk` frames straight off the stream as
/// rounds complete, then the terminal `done` — or an `error` frame with
/// code `shutdown` when the daemon stops the stream mid-flight.
fn sample_worker(
    state: &Arc<ServerState>,
    tx: &SyncSender<Json>,
    id: u64,
    params: &SampleParams,
    token: &StopToken,
) {
    htsat_obs::counter!("serve.requests.sample").inc();
    let admitted = match admit_sample(state, params, token) {
        Ok(admitted) => admitted,
        Err((code, message)) => {
            token.stop();
            send_frame(tx, frame_error(Some(id), code, &message));
            return;
        }
    };
    let AdmittedSample {
        entry,
        threads,
        mut stream,
    } = admitted;
    let mut remaining = params.n;
    let mut seq: u64 = 0;
    while remaining > 0 {
        let batch = stream.next_batch(remaining);
        if batch.is_empty() {
            break; // cancelled, deadline passed, or exhausted
        }
        remaining -= batch.len();
        send_frame(tx, frame_chunk(id, seq, &batch));
        seq += 1;
    }
    let stats = *stream.stats();
    let elapsed = stream.elapsed();
    let exhausted = stream.is_exhausted();
    drop(stream);
    let cancelled = remaining > 0 && !exhausted && token.is_stopped();
    token.stop();
    entry.record_stats(&stats);
    if cancelled {
        // Satellite of the shutdown contract: every open stream gets a
        // terminal error frame before the socket closes.
        send_frame(
            tx,
            frame_error(
                Some(id),
                ErrorCode::Shutdown,
                "stream cancelled: server is shutting down",
            ),
        );
        return;
    }
    let mut payload = vec![
        ("fingerprint", params.fingerprint.to_hex().into()),
        ("engine", entry.engine_name.into()),
        ("seed", crate::proto::encode_u64_exact(params.seed)),
        ("threads", threads.into()),
        ("chunks", seq.into()),
    ];
    payload.extend(sample_tail_payload(state, &stats, elapsed, exhausted));
    send_frame(tx, frame_done(id, payload));
}

/// The single writer: drains the frame queue onto the socket. After a
/// write failure it keeps draining (senders must never block on a dead
/// socket) without writing.
fn writer_loop(mut writer: TcpStream, rx: &Receiver<Json>) {
    let mut dead = false;
    while let Ok(frame) = rx.recv() {
        if dead {
            continue;
        }
        let mut text = frame.encode();
        text.push('\n');
        htsat_obs::counter!("serve.bytes_out").add(text.len() as u64);
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            dead = true;
        }
    }
}
