//! Per-connection sessions: the v1 lockstep loop, `HELLO` negotiation, and
//! the v2 multiplexed reader/writer split.
//!
//! Every connection starts in **v1** — one request line in, one response
//! line out, bit-for-bit the pre-v2 daemon — and stays there unless the
//! client negotiates v2 with `HELLO`. After the upgrade the connection
//! splits into:
//!
//! * a **reader** (this thread): parses tagged request lines, answers
//!   cheap verbs inline, and spawns a worker thread per `LOAD`/`SAMPLE`
//!   so slow requests never block the line;
//! * a single **writer** thread draining a bounded frame queue — the one
//!   place the socket is written, so interleaved frames from concurrent
//!   workers and feed producers never tear;
//! * per-request **workers**: `SAMPLE` streams incremental `chunk` frames
//!   straight off its [`EngineStream`](htsat_core::EngineStream) as rounds
//!   complete, then a terminal `done` (or `error` code `shutdown` when the
//!   daemon stops mid-stream).
//!
//! Backpressure is the frame queue's bound: a worker with a full queue
//! blocks (its own request slows down), while `SUBSCRIBE` feed producers
//! only ever `try_send` — a slow subscriber stalls itself, never the
//! trajectory (see [`crate::feed`]). The queue depth observed at every
//! enqueue is sampled into the `serve.write_queue_depth` histogram, and
//! the time each frame waits in the queue into `serve.worker.queue_wait`.
//!
//! # Request-scoped tracing
//!
//! Each request may record a span timeline into the `htsat_obs::trace`
//! ring: always when the client supplied a `"trace"` id, otherwise
//! whenever the sampling knob elects it. The session owns the timeline's
//! lifecycle: the reader starts it (and records a `serve.reader` span for
//! its share of the work), the worker installs it as the thread-local
//! current trace — so the `serve.request` span and every engine-round
//! span beneath it bind to the owning request automatically — and frames
//! carry the handle through the queue to the writer, which splits out
//! queue-wait vs. serialize vs. write time and *finishes* the timeline
//! after writing the request's terminal frame (firing the slow-request
//! WARN when `--trace-slow-ms` is configured). Client-supplied trace ids
//! are echoed as a `"trace"` key on every v2 frame of that request;
//! untraced requests and all v1 responses keep the pre-trace wire shape
//! bit-for-bit.

use crate::feed::Feed;
use crate::json::Json;
use crate::proto::{
    frame_chunk, frame_done, frame_error, frame_from_response, frame_reply, frame_traced,
    request_id, request_trace, ErrorCode, ProtoError, Request, SampleParams, PROTOCOL_MAX,
    PROTOCOL_V1, PROTOCOL_V2,
};
use crate::server::{
    admit_sample, dispatch_request, note_response, sample_tail_payload, AdmittedSample, ServerState,
};
use htsat_obs::trace::{self, SpanName, TraceHandle};
use htsat_obs::TraceId;
use htsat_runtime::StopToken;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request line (a paper-scale inline DIMACS is a few
/// MiB; the cap only bounds a hostile endless line).
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Read-timeout used as the stop-flag poll interval on session sockets.
const READ_POLL: Duration = Duration::from_millis(50);

/// v2 writer-side socket timeout: a client that stops draining its socket
/// stalls its own frames for at most this long before the writer declares
/// the connection dead — a stuck client must not hold up daemon shutdown.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Bound of the per-connection v2 frame queue, in frames. Workers block
/// when it fills (per-request backpressure); feed producers skip instead.
const FRAME_QUEUE_DEPTH: usize = 64;

/// Pre-interned trace span names, resolved once per process so the
/// per-request path never takes the intern lock.
struct TraceNames {
    hello: SpanName,
    load: SpanName,
    sample: SpanName,
    status: SpanName,
    stats: SpanName,
    evict: SpanName,
    shutdown: SpanName,
    subscribe: SpanName,
    credit: SpanName,
    unsubscribe: SpanName,
    trace: SpanName,
    register: SpanName,
    reader: SpanName,
    queue_wait: SpanName,
    serialize: SpanName,
    write: SpanName,
}

fn trace_names() -> &'static TraceNames {
    static NAMES: OnceLock<TraceNames> = OnceLock::new();
    NAMES.get_or_init(|| TraceNames {
        hello: trace::span_name("hello"),
        load: trace::span_name("load"),
        sample: trace::span_name("sample"),
        status: trace::span_name("status"),
        stats: trace::span_name("stats"),
        evict: trace::span_name("evict"),
        shutdown: trace::span_name("shutdown"),
        subscribe: trace::span_name("subscribe"),
        credit: trace::span_name("credit"),
        unsubscribe: trace::span_name("unsubscribe"),
        trace: trace::span_name("trace"),
        register: trace::span_name("register"),
        reader: trace::span_name("serve.reader"),
        queue_wait: trace::span_name("serve.worker.queue_wait"),
        serialize: trace::span_name("serve.writer.serialize"),
        write: trace::span_name("serve.writer.write"),
    })
}

/// The wire verb a timeline is filed (and `TRACE`-filtered) under.
fn verb_name(request: &Request) -> SpanName {
    let names = trace_names();
    match request {
        Request::Hello { .. } => names.hello,
        Request::Load { .. } => names.load,
        Request::Sample(_) => names.sample,
        Request::Status => names.status,
        Request::Stats { .. } => names.stats,
        Request::Evict { .. } => names.evict,
        Request::Shutdown => names.shutdown,
        Request::Subscribe(_) => names.subscribe,
        Request::Credit { .. } => names.credit,
        Request::Unsubscribe { .. } => names.unsubscribe,
        Request::Trace { .. } => names.trace,
        Request::Register { .. } => names.register,
    }
}

/// One request's trace context, minted by the reader and carried (it is
/// `Copy`) to the worker and writer.
#[derive(Clone, Copy)]
pub(crate) struct RequestTrace {
    /// The timeline's id: client-supplied, or minted by the sampler.
    id: TraceId,
    /// Echo `"trace"` on this request's v2 frames — only for
    /// client-supplied ids, so untraced clients see unchanged frames.
    echo: bool,
    /// The claimed ring slot; `None` when the ring was momentarily full
    /// (the id is still echoed, nothing is recorded).
    handle: Option<TraceHandle>,
}

/// Starts a timeline for one decoded request: always when the client
/// supplied an explicit trace id, otherwise when the sampling knob elects
/// it. `None` means the request is not traced at all.
fn begin_trace(
    request: &Request,
    explicit: Option<TraceId>,
    request_id: u64,
) -> Option<RequestTrace> {
    let (id, echo) = match explicit {
        Some(id) => (id, true),
        None => {
            if !trace::should_sample() {
                return None;
            }
            (TraceId::mint(), false)
        }
    };
    Some(RequestTrace {
        id,
        echo,
        handle: trace::start(id, verb_name(request), request_id),
    })
}

/// The configured slow-request WARN threshold in nanoseconds.
fn trace_slow_ns(state: &ServerState) -> Option<u64> {
    state
        .config
        .trace_slow_ms
        .map(|ms| ms.saturating_mul(1_000_000))
}

/// Finishes a timeline, logging the structured slow-request WARN (with
/// the full timeline document) when it crossed the configured threshold.
fn finish_trace(handle: TraceHandle, slow_ns: Option<u64>) {
    let (total_ns, slow) = trace::finish(handle, slow_ns);
    if let Some(timeline) = slow {
        // The WARN path may allocate freely: it only runs for requests
        // already past the slowness threshold.
        let report = trace::TraceReport {
            timelines: vec![timeline],
            dropped_traces: 0,
        };
        let t = &report.timelines[0];
        htsat_obs::warn!(
            "slow request trace={} verb={} total_ms={:.3} {}",
            t.trace.to_hex(),
            t.verb,
            total_ns as f64 / 1e6,
            report.to_json().encode()
        );
    }
}

/// Records the reader thread's share of a request (parse + inline
/// handling or worker spawn) into its timeline.
fn record_reader_span(rt: Option<RequestTrace>, start_ns: u64) {
    if let Some(handle) = rt.and_then(|t| t.handle) {
        trace::record_span(
            handle,
            trace_names().reader,
            start_ns,
            trace::timestamp_ns().saturating_sub(start_ns),
        );
    }
}

/// Reads `\n`-terminated lines from a stream with a read timeout,
/// preserving partially received lines across timeouts (a plain
/// `BufRead::read_line` would drop them) and checking a stop flag between
/// polls.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    /// Bytes of `pending` already scanned for a newline, so each appended
    /// chunk is scanned once (a full rescan per chunk would make multi-MiB
    /// inline-DIMACS lines quadratic).
    scanned: usize,
}

impl LineReader {
    /// Returns the next complete line (without guarantee of trailing
    /// newline trimming), or `None` on EOF / stop / protocol violation.
    fn next_line(&mut self, stop: &StopToken) -> Option<String> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(pos) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let line: Vec<u8> = self.pending.drain(..=self.scanned + pos).collect();
                self.scanned = 0;
                // Invalid UTF-8 cannot be valid protocol JSON; drop the
                // connection rather than guessing.
                return String::from_utf8(line).ok();
            }
            self.scanned = self.pending.len();
            if stop.is_stopped() || self.pending.len() > MAX_LINE_BYTES {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None, // client hung up (partial line dropped)
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return None,
            }
        }
    }
}

/// RAII level of concurrently open connections: the gauge rises on session
/// entry and falls on every exit path (EOF, shutdown, write failure).
struct ConnectionGauge;

impl ConnectionGauge {
    fn enter() -> ConnectionGauge {
        htsat_obs::gauge!("serve.connections.active").inc();
        ConnectionGauge
    }
}

impl Drop for ConnectionGauge {
    fn drop(&mut self) {
        htsat_obs::gauge!("serve.connections.active").dec();
    }
}

/// RAII level of in-flight worker requests (v1 blocking `SAMPLE`s and v2
/// `LOAD`/`SAMPLE` workers alike): the `serve.inflight` gauge.
struct InflightGauge;

impl InflightGauge {
    fn enter() -> InflightGauge {
        htsat_obs::gauge!("serve.inflight").inc();
        InflightGauge
    }
}

impl Drop for InflightGauge {
    fn drop(&mut self) {
        htsat_obs::gauge!("serve.inflight").dec();
    }
}

/// Serves one connection, starting in the v1 lockstep loop. A `HELLO`
/// negotiating version 2 hands the transport to [`session_v2`] and never
/// comes back.
pub(crate) fn session(stream: TcpStream, state: &Arc<ServerState>) {
    let _active = ConnectionGauge::enter();
    let _ = stream.set_nodelay(true);
    // Sessions must notice a daemon-wide shutdown even while idle in a
    // read: a read timeout turns the blocking read into a poll.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        pending: Vec::new(),
        scanned: 0,
    };
    let slow_ns = trace_slow_ns(state);
    // v1 requests carry no wire id; a per-connection sequence number
    // stands in as the timeline's request id.
    let mut request_seq: u64 = 0;
    loop {
        let Some(line) = reader.next_line(&state.stop) else {
            return;
        };
        htsat_obs::counter!("serve.bytes_in").add(line.len() as u64);
        if line.trim().is_empty() {
            continue;
        }
        request_seq += 1;
        let (response, action, rt) = dispatch_v1_line(&line, state, request_seq);
        note_response(&response);
        let mut text = response.encode();
        text.push('\n');
        htsat_obs::counter!("serve.bytes_out").add(text.len() as u64);
        let write_start = trace::timestamp_ns();
        let write_failed = writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err();
        if let Some(handle) = rt.and_then(|t| t.handle) {
            // v1 is lockstep: this thread wrote the response itself, so it
            // records the write span and closes the timeline in place.
            trace::record_span(
                handle,
                trace_names().write,
                write_start,
                trace::timestamp_ns().saturating_sub(write_start),
            );
            finish_trace(handle, slow_ns);
        }
        if write_failed {
            return;
        }
        match action {
            V1Action::Continue => {}
            V1Action::Shutdown => {
                // Acknowledge first, then stop the world: the master flag
                // ends the accept loop, the stop set cancels in-flight
                // streams on other sessions.
                state.stop.stop();
                state.requests.stop_all();
                return;
            }
            V1Action::UpgradeV2 => {
                return session_v2(reader, writer, state);
            }
        }
    }
}

/// What the v1 loop does after writing a response line.
enum V1Action {
    Continue,
    Shutdown,
    UpgradeV2,
}

/// Parses and executes one v1 request line, intercepting `HELLO` (version
/// negotiation is a session concern, not a dispatch one). Returns the
/// response, the follow-up action, and the request's trace context — the
/// caller finishes the timeline after writing the response, so the write
/// itself is part of the recorded total.
fn dispatch_v1_line(
    line: &str,
    state: &Arc<ServerState>,
    request_seq: u64,
) -> (Json, V1Action, Option<RequestTrace>) {
    let msg = match Json::parse(line.trim_end()) {
        Ok(msg) => msg,
        Err(e) => {
            return (
                crate::proto::error_response(ErrorCode::BadJson, &format!("invalid JSON: {e}")),
                V1Action::Continue,
                None,
            )
        }
    };
    let explicit = match request_trace(&msg) {
        Ok(explicit) => explicit,
        Err(ProtoError(e)) => {
            return (
                crate::proto::error_response(ErrorCode::BadRequest, &e),
                V1Action::Continue,
                None,
            )
        }
    };
    let request = match Request::decode(&msg) {
        Ok(request) => request,
        Err(ProtoError(e)) => {
            return (
                crate::proto::error_response(ErrorCode::BadRequest, &e),
                V1Action::Continue,
                None,
            )
        }
    };
    let rt = begin_trace(&request, explicit, request_seq);
    let _scope = rt.and_then(|t| t.handle).map(trace::install);
    if let Request::Hello { version } = request {
        htsat_obs::counter!("serve.requests.hello").inc();
        let accepted = match version {
            PROTOCOL_V1 => V1Action::Continue,
            PROTOCOL_V2 => V1Action::UpgradeV2,
            other => {
                return (
                    crate::proto::error_response(
                        ErrorCode::BadRequest,
                        &format!(
                            "unsupported protocol version {other} (supported: \
                             {PROTOCOL_V1}..={PROTOCOL_MAX})"
                        ),
                    ),
                    V1Action::Continue,
                    rt,
                )
            }
        };
        return (
            crate::proto::ok_response(vec![
                ("version", version.into()),
                ("max_version", PROTOCOL_MAX.into()),
            ]),
            accepted,
            rt,
        );
    }
    let span = htsat_obs::span!("serve.request");
    let (response, shutdown) = dispatch_request(request, state);
    drop(span);
    (
        response,
        if shutdown {
            V1Action::Shutdown
        } else {
            V1Action::Continue
        },
        rt,
    )
}

/// In-flight v2 requests of one connection: id → stop token. The reader
/// inserts before spawning a worker (so duplicate ids are caught
/// synchronously); the worker removes its own entry when it finishes.
type InflightMap = Arc<Mutex<HashMap<u64, StopToken>>>;

/// Trace attribution carried with one queued frame to the writer.
#[derive(Clone, Copy)]
pub(crate) struct FrameTrace {
    handle: TraceHandle,
    /// The request's last frame: after writing it the writer finishes the
    /// timeline (and fires the slow-request WARN past the threshold).
    terminal: bool,
}

/// One frame in flight to the connection's writer thread.
pub(crate) struct QueuedFrame {
    frame: Json,
    trace: Option<FrameTrace>,
    /// Enqueue timestamp, so the writer can attribute queue-wait time.
    enqueued_ns: u64,
}

/// Why a lossy [`FrameSender::try_send`] did not enqueue.
pub(crate) enum FrameTrySendError {
    /// The connection's frame queue is full (the subscriber is stalled).
    Full,
    /// The writer is gone (connection closed).
    Disconnected,
}

/// A handle on one connection's frame queue: the sending half of the
/// writer channel plus the shared depth counter every enqueue samples
/// into the `serve.write_queue_depth` histogram.
#[derive(Clone)]
pub(crate) struct FrameSender {
    tx: SyncSender<QueuedFrame>,
    depth: Arc<AtomicUsize>,
}

impl FrameSender {
    /// Blocking enqueue with the error funnel — the reader's and workers'
    /// path (they accept backpressure from their own connection's queue).
    fn send(&self, frame: Json, trace: Option<FrameTrace>) {
        note_response(&frame);
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        htsat_obs::histogram!("serve.write_queue_depth").record(depth as u64);
        let queued = QueuedFrame {
            frame,
            trace,
            enqueued_ns: trace::timestamp_ns(),
        };
        if self.tx.send(queued).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Lossy enqueue — the feed producers' path (a full queue stalls the
    /// subscriber, never the shared trajectory). Deliberately outside the
    /// `note_response` funnel, like the raw sender it replaced: feed
    /// frames are addressed by seat, not request, and their terminal
    /// errors are accounted by the feed itself.
    pub(crate) fn try_send(&self, frame: Json) -> Result<(), FrameTrySendError> {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        let queued = QueuedFrame {
            frame,
            trace: None,
            enqueued_ns: trace::timestamp_ns(),
        };
        match self.tx.try_send(queued) {
            Ok(()) => {
                htsat_obs::histogram!("serve.write_queue_depth").record(depth as u64);
                Ok(())
            }
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(match e {
                    TrySendError::Full(_) => FrameTrySendError::Full,
                    TrySendError::Disconnected(_) => FrameTrySendError::Disconnected,
                })
            }
        }
    }
}

/// The v2 multiplexed loop: this thread keeps reading tagged requests, a
/// dedicated thread owns all writes, and `LOAD`/`SAMPLE` run on per-request
/// worker threads — concurrent requests on one connection complete out of
/// order.
fn session_v2(mut reader: LineReader, writer: TcpStream, state: &Arc<ServerState>) {
    // A stuck client must not wedge shutdown: bound every socket write.
    let _ = writer.set_write_timeout(Some(WRITE_TIMEOUT));
    let depth = Arc::new(AtomicUsize::new(0));
    let (raw_tx, rx) = std::sync::mpsc::sync_channel::<QueuedFrame>(FRAME_QUEUE_DEPTH);
    let tx = FrameSender {
        tx: raw_tx,
        depth: depth.clone(),
    };
    let slow_ns = trace_slow_ns(state);
    let writer_handle = std::thread::Builder::new()
        .name("htsat-serve-writer".to_string())
        .spawn(move || writer_loop(writer, &rx, &depth, slow_ns))
        .expect("spawn writer thread");
    let inflight: InflightMap = Arc::new(Mutex::new(HashMap::new()));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut subs: HashMap<u64, Arc<Feed>> = HashMap::new();
    let mut shutdown = false;

    while let Some(line) = reader.next_line(&state.stop) {
        htsat_obs::counter!("serve.bytes_in").add(line.len() as u64);
        if line.trim().is_empty() {
            continue;
        }
        match handle_v2_line(&line, state, &tx, &inflight, &mut subs, &mut workers) {
            V2Action::Continue => {}
            V2Action::Shutdown => {
                shutdown = true;
                break;
            }
        }
        workers.retain(|w| !w.is_finished());
    }

    if shutdown {
        // Stop the world before joining this connection's workers, so the
        // in-flight streams cancel and emit their terminal `shutdown`
        // error frames while the writer is still draining.
        state.stop.stop();
        state.requests.stop_all();
    }
    // Cancel this connection's own in-flight streams (client hang-up) and
    // release its feed seats so producers drop their queue handles.
    for token in inflight.lock().expect("inflight poisoned").values() {
        token.stop();
    }
    for (sub, feed) in subs {
        feed.remove(sub);
    }
    for worker in workers {
        let _ = worker.join();
    }
    // All frame producers are gone; the writer drains the queue and exits.
    drop(tx);
    let _ = writer_handle.join();
}

/// What the v2 reader does after handling one line.
enum V2Action {
    Continue,
    Shutdown,
}

/// Sends an untraced frame to the connection's writer.
fn send_frame(tx: &FrameSender, frame: Json) {
    tx.send(frame, None);
}

/// Sends one frame of a (possibly) traced request: echoes the client's
/// trace id and carries the recording handle to the writer; `terminal`
/// marks the frame whose write closes the timeline.
fn send_traced(tx: &FrameSender, frame: Json, rt: Option<RequestTrace>, terminal: bool) {
    let echo = rt.filter(|t| t.echo).map(|t| t.id);
    let attribution = rt
        .and_then(|t| t.handle)
        .map(|handle| FrameTrace { handle, terminal });
    tx.send(frame_traced(frame, echo), attribution);
}

/// Parses and executes one v2 request line on the reader thread.
fn handle_v2_line(
    line: &str,
    state: &Arc<ServerState>,
    tx: &FrameSender,
    inflight: &InflightMap,
    subs: &mut HashMap<u64, Arc<Feed>>,
    workers: &mut Vec<JoinHandle<()>>,
) -> V2Action {
    let reader_start = trace::timestamp_ns();
    let msg = match Json::parse(line.trim_end()) {
        Ok(msg) => msg,
        Err(e) => {
            send_frame(
                tx,
                frame_error(None, ErrorCode::BadJson, &format!("invalid JSON: {e}")),
            );
            return V2Action::Continue;
        }
    };
    let id = match request_id(&msg) {
        Ok(Some(id)) => id,
        Ok(None) => {
            send_frame(
                tx,
                frame_error(None, ErrorCode::BadRequest, "v2 requests need an `id`"),
            );
            return V2Action::Continue;
        }
        Err(ProtoError(e)) => {
            send_frame(tx, frame_error(None, ErrorCode::BadRequest, &e));
            return V2Action::Continue;
        }
    };
    let explicit = match request_trace(&msg) {
        Ok(explicit) => explicit,
        Err(ProtoError(e)) => {
            send_frame(tx, frame_error(Some(id), ErrorCode::BadRequest, &e));
            return V2Action::Continue;
        }
    };
    let request = match Request::decode(&msg) {
        Ok(request) => request,
        Err(ProtoError(e)) => {
            send_frame(tx, frame_error(Some(id), ErrorCode::BadRequest, &e));
            return V2Action::Continue;
        }
    };
    let rt = begin_trace(&request, explicit, id);
    match request {
        Request::Hello { .. } => {
            htsat_obs::counter!("serve.requests.hello").inc();
            record_reader_span(rt, reader_start);
            send_traced(
                tx,
                frame_error(
                    Some(id),
                    ErrorCode::BadRequest,
                    "protocol version already negotiated",
                ),
                rt,
                true,
            );
        }
        Request::Status
        | Request::Stats { .. }
        | Request::Evict { .. }
        | Request::Trace { .. }
        | Request::Register { .. } => {
            let frame = {
                let _scope = rt.and_then(|t| t.handle).map(trace::install);
                let _span = htsat_obs::span!("serve.request");
                let (response, _) = dispatch_request(request, state);
                frame_from_response(id, &response)
            };
            record_reader_span(rt, reader_start);
            send_traced(tx, frame, rt, true);
        }
        Request::Shutdown => {
            let frame = {
                let _scope = rt.and_then(|t| t.handle).map(trace::install);
                let _span = htsat_obs::span!("serve.request");
                let (response, _) = dispatch_request(request, state);
                frame_from_response(id, &response)
            };
            record_reader_span(rt, reader_start);
            send_traced(tx, frame, rt, true);
            return V2Action::Shutdown;
        }
        Request::Subscribe(params) => {
            let frame = {
                let _scope = rt.and_then(|t| t.handle).map(trace::install);
                let _span = htsat_obs::span!("serve.request");
                htsat_obs::counter!("serve.requests.subscribe").inc();
                match state.feeds.subscribe(state, &params, tx.clone()) {
                    Ok((sub, feed)) => {
                        subs.insert(sub, feed);
                        frame_reply(
                            id,
                            vec![
                                ("sub", crate::proto::encode_u64_exact(sub)),
                                ("seed", crate::proto::encode_u64_exact(params.seed)),
                                ("credit", params.credit.into()),
                                ("chunk", params.chunk.into()),
                            ],
                        )
                    }
                    Err((code, message)) => frame_error(Some(id), code, &message),
                }
            };
            record_reader_span(rt, reader_start);
            send_traced(tx, frame, rt, true);
        }
        Request::Credit { sub, n } => {
            htsat_obs::counter!("serve.requests.credit").inc();
            let frame = match subs.get(&sub).and_then(|feed| feed.credit(sub, n)) {
                Some(total) => frame_reply(
                    id,
                    vec![
                        ("sub", crate::proto::encode_u64_exact(sub)),
                        ("credit", total.into()),
                    ],
                ),
                None => frame_error(
                    Some(id),
                    ErrorCode::BadRequest,
                    &format!("unknown subscription `{sub}` (ended or never opened here)"),
                ),
            };
            record_reader_span(rt, reader_start);
            send_traced(tx, frame, rt, true);
        }
        Request::Unsubscribe { sub } => {
            htsat_obs::counter!("serve.requests.unsubscribe").inc();
            let frame = match subs.remove(&sub) {
                Some(feed) => {
                    feed.remove(sub);
                    frame_reply(
                        id,
                        vec![
                            ("sub", crate::proto::encode_u64_exact(sub)),
                            ("unsubscribed", true.into()),
                        ],
                    )
                }
                None => frame_error(
                    Some(id),
                    ErrorCode::BadRequest,
                    &format!("unknown subscription `{sub}` (ended or never opened here)"),
                ),
            };
            record_reader_span(rt, reader_start);
            send_traced(tx, frame, rt, true);
        }
        Request::Load { .. } | Request::Sample(_) => {
            // Admission happens on the reader so a duplicate in-flight id
            // is rejected synchronously — before the next line is read —
            // without touching the existing stream.
            let mut map = inflight.lock().expect("inflight poisoned");
            if map.contains_key(&id) {
                drop(map);
                record_reader_span(rt, reader_start);
                send_traced(
                    tx,
                    frame_error(
                        Some(id),
                        ErrorCode::BadRequest,
                        &format!("duplicate in-flight `id` {id}"),
                    ),
                    rt,
                    true,
                );
                return V2Action::Continue;
            }
            // SAMPLE workers get a daemon-registered token (their streams
            // must cancel on shutdown); LOAD is not cancellable and gets a
            // local one, used only to interrupt nothing.
            let token = match request {
                Request::Sample(_) => state.requests.issue(),
                _ => StopToken::new(),
            };
            map.insert(id, token.clone());
            htsat_obs::histogram!("serve.multiplex_depth").record(map.len() as u64);
            drop(map);
            record_reader_span(rt, reader_start);
            let worker_state = state.clone();
            let worker_tx = tx.clone();
            let worker_inflight = inflight.clone();
            let handle = std::thread::Builder::new()
                .name("htsat-serve-worker".to_string())
                .spawn(move || {
                    let _inflight_level = InflightGauge::enter();
                    // Installing the trace binds every span this thread
                    // opens — `serve.request` and the engine-round spans
                    // inside the stream — to the owning request.
                    let _scope = rt.and_then(|t| t.handle).map(trace::install);
                    match request {
                        Request::Sample(params) => {
                            sample_worker(&worker_state, &worker_tx, id, &params, &token, rt);
                        }
                        request => {
                            let frame = {
                                let _span = htsat_obs::span!("serve.request");
                                let (response, _) = dispatch_request(request, &worker_state);
                                frame_from_response(id, &response)
                            };
                            send_traced(&worker_tx, frame, rt, true);
                        }
                    }
                    worker_inflight
                        .lock()
                        .expect("inflight poisoned")
                        .remove(&id);
                })
                .expect("spawn worker thread");
            workers.push(handle);
        }
    }
    V2Action::Continue
}

/// Streams one v2 `SAMPLE`: `chunk` frames straight off the stream as
/// rounds complete, then the terminal `done` — or an `error` frame with
/// code `shutdown` when the daemon stops the stream mid-flight.
fn sample_worker(
    state: &Arc<ServerState>,
    tx: &FrameSender,
    id: u64,
    params: &SampleParams,
    token: &StopToken,
    rt: Option<RequestTrace>,
) {
    htsat_obs::counter!("serve.requests.sample").inc();
    // Dropped explicitly before the terminal frame is enqueued, so the
    // writer never races the span's timeline record while finishing.
    let span = htsat_obs::span!("serve.request");
    let admitted = match admit_sample(state, params, token) {
        Ok(admitted) => admitted,
        Err((code, message)) => {
            token.stop();
            drop(span);
            send_traced(tx, frame_error(Some(id), code, &message), rt, true);
            return;
        }
    };
    let AdmittedSample {
        entry,
        threads,
        mut stream,
    } = admitted;
    let mut remaining = params.n;
    let mut seq: u64 = 0;
    while remaining > 0 {
        let batch = stream.next_batch(remaining);
        if batch.is_empty() {
            break; // cancelled, deadline passed, or exhausted
        }
        remaining -= batch.len();
        send_traced(tx, frame_chunk(id, seq, &batch), rt, false);
        seq += 1;
    }
    let stats = *stream.stats();
    let elapsed = stream.elapsed();
    let exhausted = stream.is_exhausted();
    drop(stream);
    let cancelled = remaining > 0 && !exhausted && token.is_stopped();
    token.stop();
    entry.record_stats(&stats);
    if cancelled {
        // Satellite of the shutdown contract: every open stream gets a
        // terminal error frame before the socket closes.
        drop(span);
        send_traced(
            tx,
            frame_error(
                Some(id),
                ErrorCode::Shutdown,
                "stream cancelled: server is shutting down",
            ),
            rt,
            true,
        );
        return;
    }
    let mut payload = vec![
        ("fingerprint", params.fingerprint.to_hex().into()),
        ("engine", entry.engine_name.into()),
        ("seed", crate::proto::encode_u64_exact(params.seed)),
        ("threads", threads.into()),
        ("chunks", seq.into()),
    ];
    payload.extend(sample_tail_payload(state, &stats, elapsed, exhausted));
    drop(span);
    send_traced(tx, frame_done(id, payload), rt, true);
}

/// The single writer: drains the frame queue onto the socket, recording
/// each traced frame's queue-wait, serialize and write time into its
/// request's timeline, and closing the timeline after the request's
/// terminal frame. After a write failure it keeps draining (senders must
/// never block on a dead socket) without writing.
fn writer_loop(
    mut writer: TcpStream,
    rx: &Receiver<QueuedFrame>,
    depth: &AtomicUsize,
    slow_ns: Option<u64>,
) {
    let names = trace_names();
    let mut dead = false;
    while let Ok(queued) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        let dequeued_ns = trace::timestamp_ns();
        let waited_ns = dequeued_ns.saturating_sub(queued.enqueued_ns);
        htsat_obs::histogram!("serve.worker.queue_wait").record(waited_ns);
        if let Some(t) = queued.trace {
            trace::record_span(t.handle, names.queue_wait, queued.enqueued_ns, waited_ns);
        }
        if dead {
            // The socket is gone but timelines must still close, or the
            // ring slot would leak until overwritten.
            if let Some(t) = queued.trace.filter(|t| t.terminal) {
                finish_trace(t.handle, slow_ns);
            }
            continue;
        }
        let mut text = queued.frame.encode();
        text.push('\n');
        let serialized_ns = trace::timestamp_ns();
        htsat_obs::counter!("serve.bytes_out").add(text.len() as u64);
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            dead = true;
        }
        if let Some(t) = queued.trace {
            let written_ns = trace::timestamp_ns();
            trace::record_span(
                t.handle,
                names.serialize,
                dequeued_ns,
                serialized_ns.saturating_sub(dequeued_ns),
            );
            trace::record_span(
                t.handle,
                names.write,
                serialized_ns,
                written_ns.saturating_sub(serialized_ns),
            );
            if t.terminal {
                finish_trace(t.handle, slow_ns);
            }
        }
    }
}
