//! `SUBSCRIBE` fanout: shared push feeds with per-subscriber credit.
//!
//! A feed is **one** resident engine session whose solution batches fan
//! out to N subscribers — the paper's serving story at its sharpest: one
//! GD trajectory feeding many CRV-stimulus consumers. Feeds are keyed by
//! the full trajectory identity (formula, engine, seed, threads, batch,
//! stale limit, chunk size), so two subscribers asking for the same
//! trajectory share one stream and both see its *identical* batches.
//!
//! Flow control is **credit-based and per-subscriber**: each `pushed`
//! frame spends one credit, `CREDIT` grants more, and a subscriber at
//! zero credit (or with a full connection queue) simply *misses* batches
//! — its `stalls` counter rises and the feed's `seq` numbers expose the
//! gap — while every funded subscriber keeps receiving. The producer only
//! parks when *no* subscriber has credit: slow consumers stall
//! themselves, never the trajectory. A feed ends when its solution space
//! exhausts (terminal `done` to every seat), when the last subscriber
//! leaves (the producer quietly retires), or at daemon shutdown (terminal
//! `error` code `shutdown` to every seat).

use crate::proto::{
    frame_feed_done, frame_feed_error, frame_pushed, ErrorCode, SampleParams, SubscribeParams,
};
use crate::registry::RegistryEntry;
use crate::server::{admit_sample, sample_tail_payload, ServerState};
use crate::session::{FrameSender, FrameTrySendError};
use htsat_cnf::Fingerprint;
use htsat_core::EngineStream;
use htsat_runtime::StopToken;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a parked producer sleeps between stop-flag polls while no
/// subscriber has credit (credit grants wake it immediately via condvar).
const FEED_PARK_POLL: Duration = Duration::from_millis(50);

/// The full trajectory identity a feed is shared under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct FeedKey {
    fingerprint: Fingerprint,
    engine: String,
    seed: u64,
    threads: Option<usize>,
    batch: Option<usize>,
    max_stale: Option<u32>,
    chunk: usize,
}

impl FeedKey {
    fn of(params: &SubscribeParams) -> FeedKey {
        FeedKey {
            fingerprint: params.fingerprint,
            engine: params
                .engine
                .clone()
                .unwrap_or_else(|| crate::proto::DEFAULT_ENGINE.to_string()),
            seed: params.seed,
            threads: params.threads,
            batch: params.batch,
            max_stale: params.max_stale,
            chunk: params.chunk,
        }
    }
}

/// One subscriber's seat on a feed.
struct Seat {
    sub: u64,
    /// The owning connection's frame queue (v2 writer).
    tx: FrameSender,
    credit: u64,
    delivered: u64,
    stalls: u64,
}

struct FeedInner {
    seats: Vec<Seat>,
    /// Set by the producer on its way out: no new seat may join (a fresh
    /// feed replaces this one in the registry instead).
    closed: bool,
}

/// A live shared feed: its seats, the producer's wake signal and its stop
/// token (issued from the daemon's request [`StopSet`](htsat_runtime::StopSet),
/// so shutdown cancels the trajectory like any other stream).
pub(crate) struct Feed {
    key: FeedKey,
    inner: Mutex<FeedInner>,
    wake: Condvar,
    stop: StopToken,
}

impl Feed {
    /// Grants `n` more frames to a seat; returns its new credit total, or
    /// `None` when the seat is gone (feed ended or unsubscribed).
    pub(crate) fn credit(&self, sub: u64, n: u64) -> Option<u64> {
        let mut inner = self.inner.lock().expect("feed poisoned");
        let seat = inner.seats.iter_mut().find(|s| s.sub == sub)?;
        seat.credit = seat.credit.saturating_add(n);
        let total = seat.credit;
        drop(inner);
        self.wake.notify_all();
        Some(total)
    }

    /// Removes a seat (unsubscribe or its connection closing); returns
    /// whether it was present. With the last seat gone the producer
    /// retires on its next wake.
    pub(crate) fn remove(&self, sub: u64) -> bool {
        let mut inner = self.inner.lock().expect("feed poisoned");
        let before = inner.seats.len();
        inner.seats.retain(|s| s.sub != sub);
        let removed = inner.seats.len() < before;
        drop(inner);
        if removed {
            htsat_obs::gauge!("serve.sub.subscribers").dec();
            self.wake.notify_all();
        }
        removed
    }
}

/// All live feeds plus their producer threads, owned by the
/// [`ServerState`].
pub(crate) struct FeedRegistry {
    feeds: Mutex<HashMap<FeedKey, Arc<Feed>>>,
    producers: Mutex<Vec<JoinHandle<()>>>,
    next_sub: AtomicU64,
}

impl FeedRegistry {
    pub(crate) fn new() -> FeedRegistry {
        FeedRegistry {
            feeds: Mutex::new(HashMap::new()),
            producers: Mutex::new(Vec::new()),
            next_sub: AtomicU64::new(0),
        }
    }

    /// Live feed count (status reporting).
    pub(crate) fn feed_count(&self) -> usize {
        self.feeds.lock().expect("feeds poisoned").len()
    }

    /// Total seats across all live feeds (status reporting).
    pub(crate) fn subscriber_count(&self) -> usize {
        self.feeds
            .lock()
            .expect("feeds poisoned")
            .values()
            .map(|feed| feed.inner.lock().expect("feed poisoned").seats.len())
            .sum()
    }

    /// Seats a subscriber: joins the live feed of the same trajectory, or
    /// validates the request and starts a new producer. Returns the
    /// subscription id and the feed (the session routes `CREDIT` /
    /// `UNSUBSCRIBE` / disconnect cleanup through it).
    ///
    /// # Errors
    ///
    /// The same validation failures as a `SAMPLE` (not loaded, caps,
    /// config), plus `shutdown` while the daemon stops.
    pub(crate) fn subscribe(
        &self,
        state: &Arc<ServerState>,
        params: &SubscribeParams,
        tx: FrameSender,
    ) -> Result<(u64, Arc<Feed>), (ErrorCode, String)> {
        let key = FeedKey::of(params);
        let sub = self.next_sub.fetch_add(1, Ordering::Relaxed) + 1;
        let seat = Seat {
            sub,
            tx,
            credit: params.credit,
            delivered: 0,
            stalls: 0,
        };
        let mut feeds = self.feeds.lock().expect("feeds poisoned");
        if let Some(feed) = feeds.get(&key) {
            let mut inner = feed.inner.lock().expect("feed poisoned");
            if !inner.closed {
                inner.seats.push(seat);
                drop(inner);
                htsat_obs::gauge!("serve.sub.subscribers").inc();
                feed.wake.notify_all();
                return Ok((sub, feed.clone()));
            }
            // The producer is on its way out; replace with a fresh feed.
            drop(inner);
            feeds.remove(&key);
        }
        // First subscriber of this trajectory: validate like a SAMPLE and
        // start the producer.
        let sample_params = SampleParams {
            fingerprint: params.fingerprint,
            engine: params.engine.clone(),
            n: 0, // feeds have no target count; `n` is unused
            seed: params.seed,
            deadline_ms: None,
            max_stale: params.max_stale,
            threads: params.threads,
            batch: params.batch,
        };
        let token = state.requests.issue();
        let admitted = match admit_sample(state, &sample_params, &token) {
            Ok(admitted) => admitted,
            Err(err) => {
                token.stop();
                return Err(err);
            }
        };
        let feed = Arc::new(Feed {
            key: key.clone(),
            inner: Mutex::new(FeedInner {
                seats: vec![seat],
                closed: false,
            }),
            wake: Condvar::new(),
            stop: token,
        });
        feeds.insert(key, feed.clone());
        drop(feeds);
        htsat_obs::gauge!("serve.sub.subscribers").inc();
        let producer_state = state.clone();
        let producer_feed = feed.clone();
        let chunk = params.chunk;
        let handle = std::thread::Builder::new()
            .name("htsat-serve-feed".to_string())
            .spawn(move || {
                run_feed(
                    &producer_state,
                    &producer_feed,
                    admitted.entry,
                    admitted.stream,
                    chunk,
                );
            })
            .expect("spawn feed producer");
        self.producers
            .lock()
            .expect("producers poisoned")
            .push(handle);
        Ok((sub, feed))
    }

    /// Joins every producer thread that ever ran (daemon shutdown path —
    /// their stop tokens have been fired with the rest of the request
    /// set).
    pub(crate) fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.producers.lock().expect("producers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Why a producer stopped producing.
enum FeedEnd {
    /// The solution space exhausted (or the stream otherwise ran dry).
    Exhausted,
    /// Daemon shutdown cancelled the trajectory.
    Shutdown,
    /// Every subscriber left; nobody is listening.
    Abandoned,
}

/// The producer loop of one feed: park until some seat has credit, advance
/// the shared trajectory by one chunk, fan it out, repeat.
fn run_feed(
    state: &Arc<ServerState>,
    feed: &Arc<Feed>,
    entry: Arc<RegistryEntry>,
    mut stream: EngineStream,
    chunk: usize,
) {
    let mut seq: u64 = 0;
    let end = loop {
        // Park (not spin) while no seat can accept a batch. Credit grants
        // and seat changes notify the condvar; the timeout bounds how long
        // a daemon-wide stop can go unnoticed.
        {
            let mut inner = feed.inner.lock().expect("feed poisoned");
            loop {
                if feed.stop.is_stopped() {
                    break;
                }
                if inner.seats.is_empty() {
                    break;
                }
                if inner.seats.iter().any(|s| s.credit > 0) {
                    break;
                }
                let (guard, _timeout) = feed
                    .wake
                    .wait_timeout(inner, FEED_PARK_POLL)
                    .expect("feed poisoned");
                inner = guard;
            }
            if feed.stop.is_stopped() {
                break FeedEnd::Shutdown;
            }
            if inner.seats.is_empty() {
                break FeedEnd::Abandoned;
            }
        }
        let batch = stream.next_batch(chunk);
        if batch.is_empty() {
            break if feed.stop.is_stopped() {
                FeedEnd::Shutdown
            } else {
                FeedEnd::Exhausted
            };
        }
        let mut inner = feed.inner.lock().expect("feed poisoned");
        inner.seats.retain_mut(|seat| {
            if seat.credit == 0 {
                // Lossy by design: the starved seat misses this batch (its
                // next `seq` will jump) instead of stalling the trajectory.
                seat.stalls += 1;
                htsat_obs::counter!("serve.sub.stalls").inc();
                return true;
            }
            // Per-seat delivery time (lock held, frame built, enqueue
            // attempted) — the cost one subscriber adds to the fanout.
            let _deliver = htsat_obs::span!("serve.feed.deliver");
            match seat.tx.try_send(frame_pushed(seat.sub, seq, &batch)) {
                Ok(()) => {
                    seat.credit -= 1;
                    seat.delivered += 1;
                    htsat_obs::counter!("serve.sub.batches").inc();
                    true
                }
                Err(FrameTrySendError::Full) => {
                    // Its connection queue is full — same stall semantics
                    // as zero credit.
                    seat.stalls += 1;
                    htsat_obs::counter!("serve.sub.stalls").inc();
                    true
                }
                Err(FrameTrySendError::Disconnected) => {
                    // Connection gone; reclaim the seat.
                    htsat_obs::gauge!("serve.sub.subscribers").dec();
                    false
                }
            }
        });
        drop(inner);
        seq += 1;
    };

    let stats = *stream.stats();
    let elapsed = stream.elapsed();
    let exhausted = stream.is_exhausted();
    drop(stream);
    feed.stop.stop(); // lets the StopSet prune this token
    entry.record_stats(&stats);
    let mut inner = feed.inner.lock().expect("feed poisoned");
    inner.closed = true;
    for seat in inner.seats.drain(..) {
        htsat_obs::gauge!("serve.sub.subscribers").dec();
        let frame = match end {
            FeedEnd::Shutdown => frame_feed_error(
                seat.sub,
                ErrorCode::Shutdown,
                "feed closed: server is shutting down",
            ),
            // Exhausted (and the no-listeners retirement, where nobody
            // will read this anyway): a normal terminal `done`.
            FeedEnd::Exhausted | FeedEnd::Abandoned => {
                let mut payload = vec![
                    ("sub_delivered", seat.delivered.into()),
                    ("sub_stalls", seat.stalls.into()),
                    ("batches", seq.into()),
                ];
                payload.extend(sample_tail_payload(state, &stats, elapsed, exhausted));
                frame_feed_done(seat.sub, payload)
            }
        };
        let _ = seat.tx.try_send(frame);
    }
    drop(inner);
    // Retire from the registry — unless a fresh feed already replaced this
    // closed one under the same key.
    let mut feeds = state.feeds.feeds.lock().expect("feeds poisoned");
    if let Some(current) = feeds.get(&feed.key) {
        if Arc::ptr_eq(current, feed) {
            feeds.remove(&feed.key);
        }
    }
}
