//! Error types of the core sampler.

use std::error::Error;
use std::fmt;

/// Error produced by the CNF-to-circuit transformation or sampler setup.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransformError {
    /// The CNF contains an empty clause and is trivially unsatisfiable.
    TriviallyUnsat,
    /// The transformation produced a constant-false constraint (the formula
    /// is unsatisfiable at the structural level).
    ConstantConflict,
    /// The sampler was configured with a zero batch size or zero iterations.
    InvalidConfig(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::TriviallyUnsat => {
                write!(f, "formula contains an empty clause and is unsatisfiable")
            }
            TransformError::ConstantConflict => {
                write!(
                    f,
                    "transformation derived contradictory constant constraints"
                )
            }
            TransformError::InvalidConfig(msg) => write!(f, "invalid sampler configuration: {msg}"),
        }
    }
}

impl Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        for e in [
            TransformError::TriviallyUnsat,
            TransformError::ConstantConflict,
            TransformError::InvalidConfig("batch size is zero".into()),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().expect("non-empty").is_lowercase());
        }
    }
}
