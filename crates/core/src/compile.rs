//! Lowering the extracted netlist to a differentiable circuit.
//!
//! Every gate of the multi-level, multi-output Boolean function is replaced
//! by its probabilistic counterpart from the paper's Table I, primary inputs
//! become learnable input columns, and output constraints become ℓ2 targets.

use crate::TransformResult;
use htsat_cnf::Var;
use htsat_logic::{GateKind, NodeRef};
use htsat_tensor::{FlatKernel, SoftCircuit, SoftGate};
use std::collections::HashMap;

/// A compiled differentiable circuit together with the mapping from input
/// columns back to CNF variables.
///
/// Both execution forms are carried: [`SoftCircuit`] is the auditable
/// reference implementation, and [`FlatKernel`] is the same circuit
/// compiled into the allocation-free flat layout the sampler's hot path
/// runs on. The two produce bit-identical losses and gradients.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// The differentiable circuit (reference implementation).
    pub circuit: SoftCircuit,
    /// The flat fused kernel compiled from `circuit`.
    pub kernel: FlatKernel,
    /// CNF variable corresponding to each input column.
    pub input_vars: Vec<Var>,
}

impl CompiledCircuit {
    /// Number of learnable input columns.
    pub fn num_inputs(&self) -> usize {
        self.input_vars.len()
    }

    /// The column of a primary-input variable, if it is one.
    pub fn column_of(&self, var: Var) -> Option<usize> {
        self.input_vars.iter().position(|&v| v == var)
    }
}

/// Compiles the transformation result into a [`SoftCircuit`].
///
/// The node order of the netlist is preserved, so netlist node `i` becomes
/// soft-circuit node `i`.
pub fn compile(result: &TransformResult) -> CompiledCircuit {
    let netlist = &result.netlist;
    let input_vars: Vec<Var> = netlist
        .primary_inputs()
        .iter()
        .map(|&v| Var::new(v))
        .collect();
    let column: HashMap<u32, usize> = netlist
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();

    let mut circuit = SoftCircuit::new(input_vars.len());
    for node in netlist.nodes() {
        match node {
            NodeRef::Input(var) => {
                let col = column[var];
                circuit.input(col);
            }
            NodeRef::Const(b) => {
                circuit.constant(if *b { 1.0 } else { 0.0 });
            }
            NodeRef::Gate { kind, fanin } => {
                let gate = match kind {
                    GateKind::Buf => SoftGate::Buf,
                    GateKind::Not => SoftGate::Not,
                    GateKind::And => SoftGate::And,
                    GateKind::Or => SoftGate::Or,
                    GateKind::Nand => SoftGate::Nand,
                    GateKind::Nor => SoftGate::Nor,
                    GateKind::Xor => SoftGate::Xor,
                    GateKind::Xnor => SoftGate::Xnor,
                };
                let fanin: Vec<usize> = fanin.iter().map(|f| f.index()).collect();
                circuit.gate(gate, fanin);
            }
        }
    }
    for output in netlist.outputs() {
        circuit.constrain(output.node.index(), if output.target { 1.0 } else { 0.0 });
    }
    let kernel = FlatKernel::compile(&circuit);
    CompiledCircuit {
        circuit,
        kernel,
        input_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform;
    use htsat_cnf::Cnf;
    use htsat_tensor::{Backend, BatchMatrix};

    fn and_constrained_cnf() -> Cnf {
        // x3 = x1 AND x2, x3 constrained to 1.
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([3, -1, -2]);
        cnf.add_dimacs_clause([-3, 1]);
        cnf.add_dimacs_clause([-3, 2]);
        cnf.add_dimacs_clause([3]);
        cnf
    }

    #[test]
    fn compiled_circuit_mirrors_netlist_shape() {
        let cnf = and_constrained_cnf();
        let result = transform(&cnf).expect("transform");
        let compiled = compile(&result);
        assert_eq!(compiled.circuit.num_nodes(), result.netlist.num_nodes());
        assert_eq!(compiled.num_inputs(), result.primary_inputs().len());
        assert_eq!(
            compiled.circuit.outputs().len(),
            result.netlist.outputs().len()
        );
        assert_eq!(compiled.kernel.num_nodes(), compiled.circuit.num_nodes());
        assert_eq!(compiled.kernel.num_inputs(), compiled.num_inputs());
    }

    #[test]
    fn flat_kernel_matches_reference_on_compiled_circuits() {
        let cnf = and_constrained_cnf();
        let result = transform(&cnf).expect("transform");
        let compiled = compile(&result);
        let n = compiled.num_inputs();
        let mut ws = compiled.kernel.workspace();
        let mut ref_grad = vec![0.0f32; n];
        let mut flat_grad = vec![0.0f32; n];
        for trial in 0..8u32 {
            let inputs: Vec<f32> = (0..n)
                .map(|c| ((trial as usize + c * 3) % 7) as f32 / 7.0)
                .collect();
            let ref_loss = compiled
                .circuit
                .loss_and_grad_single(&inputs, &mut ref_grad);
            let flat_loss = compiled
                .kernel
                .loss_and_grad(&inputs, &mut flat_grad, &mut ws);
            assert_eq!(ref_loss.to_bits(), flat_loss.to_bits(), "trial {trial}");
            assert_eq!(ref_grad, flat_grad, "trial {trial}");
        }
    }

    #[test]
    fn hard_corner_evaluation_matches_netlist() {
        let cnf = and_constrained_cnf();
        let result = transform(&cnf).expect("transform");
        let compiled = compile(&result);
        let n = compiled.num_inputs();
        for mask in 0..(1u32 << n) {
            let probs = BatchMatrix::from_fn(1, n, |_, c| ((mask >> c) & 1) as f32);
            let out = compiled
                .circuit
                .forward_outputs(&probs, Backend::Sequential);
            let netlist_ok = result.netlist.outputs_satisfied(|v| {
                compiled
                    .column_of(Var::new(v))
                    .map(|c| (mask >> c) & 1 == 1)
                    .unwrap_or(false)
            });
            let soft_ok = (0..out.width()).all(|o| {
                let target = compiled.circuit.outputs()[o].1;
                (out.get(0, o) - target).abs() < 1e-6
            });
            assert_eq!(netlist_ok, soft_ok, "mask {mask:b}");
        }
    }

    #[test]
    fn column_lookup_round_trips() {
        let cnf = and_constrained_cnf();
        let result = transform(&cnf).expect("transform");
        let compiled = compile(&result);
        for (col, &var) in compiled.input_vars.iter().enumerate() {
            assert_eq!(compiled.column_of(var), Some(col));
        }
        assert_eq!(compiled.column_of(Var::new(3)), None);
    }
}
