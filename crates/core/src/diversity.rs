//! Sample-quality metrics: diversity and coverage of a solution set.
//!
//! The paper evaluates throughput of *unique* solutions; downstream users of
//! a sampler (constrained-random verification, sampler testing à la Pote &
//! Meel) also care about how *spread out* the returned solutions are. This
//! module provides the standard descriptive statistics used to compare
//! samplers: pairwise Hamming-distance statistics, per-variable bias, and
//! coverage of the (exactly counted) solution space for small formulas.

use htsat_cnf::Cnf;

/// Descriptive statistics of a set of sampled solutions.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityReport {
    /// Number of solutions analysed.
    pub num_solutions: usize,
    /// Number of variables per solution.
    pub num_vars: usize,
    /// Mean pairwise Hamming distance (estimated from at most
    /// [`MAX_PAIRS`] random pairs), normalised to `[0, 1]`.
    pub mean_normalized_hamming: f64,
    /// Minimum pairwise Hamming distance observed (absolute bit count).
    pub min_hamming: usize,
    /// Mean absolute per-variable bias: `mean_v |P(v = 1) - 0.5| * 2`,
    /// where 0 means perfectly balanced and 1 means every variable is
    /// constant across the sample set.
    pub mean_bias: f64,
}

/// Maximum number of random pairs used for the Hamming-distance estimate.
pub const MAX_PAIRS: usize = 4096;

/// Computes diversity statistics for a set of solutions.
///
/// Returns `None` when fewer than two solutions are supplied (no pairwise
/// statistics exist).
pub fn diversity(solutions: &[Vec<bool>]) -> Option<DiversityReport> {
    if solutions.len() < 2 {
        return None;
    }
    let num_vars = solutions[0].len();
    let n = solutions.len();
    // Deterministic pair subsampling: stride through all pairs.
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / MAX_PAIRS).max(1);
    let mut pair_index = 0usize;
    let mut used_pairs = 0usize;
    let mut sum_distance = 0usize;
    let mut min_distance = usize::MAX;
    for i in 0..n {
        for j in (i + 1)..n {
            if pair_index.is_multiple_of(stride) {
                let d = hamming(&solutions[i], &solutions[j]);
                sum_distance += d;
                min_distance = min_distance.min(d);
                used_pairs += 1;
            }
            pair_index += 1;
        }
    }
    let mean_normalized_hamming = if num_vars == 0 || used_pairs == 0 {
        0.0
    } else {
        sum_distance as f64 / (used_pairs as f64 * num_vars as f64)
    };
    // Per-variable bias.
    let mut bias_sum = 0.0f64;
    for v in 0..num_vars {
        let ones = solutions.iter().filter(|s| s[v]).count();
        let p = ones as f64 / n as f64;
        bias_sum += (p - 0.5).abs() * 2.0;
    }
    let mean_bias = if num_vars == 0 {
        0.0
    } else {
        bias_sum / num_vars as f64
    };
    Some(DiversityReport {
        num_solutions: n,
        num_vars,
        mean_normalized_hamming,
        min_hamming: if min_distance == usize::MAX {
            0
        } else {
            min_distance
        },
        mean_bias,
    })
}

fn hamming(a: &[bool], b: &[bool]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// Fraction of the formula's exactly enumerated solution space covered by
/// `solutions`, for formulas with at most `max_vars_exhaustive` occurring
/// variables. Returns `None` when the space is too large to enumerate.
pub fn coverage(cnf: &Cnf, solutions: &[Vec<bool>], max_vars_exhaustive: usize) -> Option<f64> {
    let occurring = cnf.occurring_vars();
    if occurring.len() > max_vars_exhaustive.min(25) {
        return None;
    }
    let mut total = 0u64;
    let mut bits = vec![false; cnf.num_vars()];
    let mut models = std::collections::HashSet::new();
    for mask in 0u64..(1u64 << occurring.len()) {
        for (i, v) in occurring.iter().enumerate() {
            bits[v.as_usize()] = (mask >> i) & 1 == 1;
        }
        if cnf.is_satisfied_by_bits(&bits) {
            total += 1;
            models.insert(
                occurring
                    .iter()
                    .map(|v| bits[v.as_usize()])
                    .collect::<Vec<_>>(),
            );
        }
    }
    if total == 0 {
        return Some(0.0);
    }
    let covered = solutions
        .iter()
        .map(|s| {
            occurring
                .iter()
                .map(|v| s[v.as_usize()])
                .collect::<Vec<bool>>()
        })
        .filter(|projected| models.contains(projected))
        .collect::<std::collections::HashSet<_>>()
        .len();
    Some(covered as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GdSampler, SamplerConfig};
    use std::time::Duration;

    #[test]
    fn diversity_requires_at_least_two_solutions() {
        assert!(diversity(&[]).is_none());
        assert!(diversity(&[vec![true, false]]).is_none());
    }

    #[test]
    fn identical_solutions_have_zero_diversity() {
        let s = vec![vec![true, false, true]; 5];
        let report = diversity(&s).expect("enough solutions");
        assert_eq!(report.mean_normalized_hamming, 0.0);
        assert_eq!(report.min_hamming, 0);
        assert_eq!(report.mean_bias, 1.0);
    }

    #[test]
    fn complementary_solutions_have_maximal_diversity() {
        let s = vec![vec![true; 4], vec![false; 4]];
        let report = diversity(&s).expect("enough solutions");
        assert_eq!(report.mean_normalized_hamming, 1.0);
        assert_eq!(report.min_hamming, 4);
        assert_eq!(report.mean_bias, 0.0);
    }

    #[test]
    fn coverage_on_small_formula() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        // Solutions: 01, 10, 11 over occurring vars.
        let sols = vec![vec![true, false], vec![true, true]];
        let cov = coverage(&cnf, &sols, 10).expect("enumerable");
        assert!((cov - 2.0 / 3.0).abs() < 1e-9);
        assert!(coverage(&cnf, &[], 10).expect("enumerable") < 1e-9);
    }

    #[test]
    fn coverage_declines_enumeration_of_large_spaces() {
        let mut cnf = Cnf::new(40);
        let clause: Vec<i64> = (1..=40).collect();
        cnf.add_dimacs_clause(clause);
        assert!(coverage(&cnf, &[], 20).is_none());
    }

    #[test]
    fn gd_sampler_produces_diverse_solutions_on_loose_formula() {
        let mut cnf = Cnf::new(8);
        cnf.add_dimacs_clause([1, 2, 3, 4, 5, 6, 7, 8]);
        let config = SamplerConfig {
            batch_size: 128,
            ..SamplerConfig::default()
        };
        let mut sampler = GdSampler::new(&cnf, config).expect("build");
        let report = sampler.sample(50, Duration::from_secs(5));
        let stats = diversity(&report.solutions).expect("enough solutions");
        assert!(stats.mean_normalized_hamming > 0.2, "{stats:?}");
        assert!(stats.mean_bias < 0.8, "{stats:?}");
    }
}
