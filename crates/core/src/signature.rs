//! CNF signatures of primitive logic gates.
//!
//! The Tseitin encoding of a primitive gate leaves a recognisable clause
//! pattern in the CNF (Section III-A, Eqs. 1–4 of the paper). Matching these
//! signatures directly is cheaper than the general expression-derivation path
//! of Algorithm 1, so the transformation tries this fast path first. It is
//! also the technique prior circuit-recovery work relies on exclusively,
//! which the paper contrasts against; keeping it separate lets the benchmark
//! harness ablate "signatures only" versus the full transformation.

use htsat_cnf::{Clause, Lit, Var};
use htsat_logic::{Expr, VarId};
use std::collections::BTreeSet;

/// A recognised gate definition: `output ⇔ expr(inputs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GateMatch {
    /// The output variable defined by the clause group.
    pub output: Var,
    /// The Boolean expression the output equals.
    pub expr: Expr,
}

/// Attempts to recognise a clause group as the Tseitin signature of a single
/// primitive gate (NOT/BUF, AND/NAND, OR/NOR, XOR/XNOR).
///
/// Returns `None` when the group does not exactly match a known signature;
/// the general derivation of Algorithm 1 is then used instead.
pub fn match_gate(clauses: &[Clause], eligible: impl Fn(Var) -> bool) -> Option<GateMatch> {
    if clauses.is_empty() {
        return None;
    }
    // Collect candidate output variables: variables occurring in every clause.
    let mut candidates: Option<BTreeSet<Var>> = None;
    for clause in clauses {
        let vars: BTreeSet<Var> = clause.vars().collect();
        candidates = Some(match candidates {
            None => vars,
            Some(prev) => prev.intersection(&vars).copied().collect(),
        });
    }
    let candidates = candidates?;
    // Prefer higher-indexed candidates: Tseitin encoders introduce gate
    // outputs after their inputs, so this matches the paper's Fig. 1 circuit.
    for output in candidates.into_iter().rev() {
        if !eligible(output) {
            continue;
        }
        if let Some(expr) = try_not_buf(clauses, output)
            .or_else(|| try_and_or(clauses, output))
            .or_else(|| try_xor(clauses, output))
        {
            return Some(GateMatch { output, expr });
        }
    }
    None
}

/// NOT/BUF signature: two binary clauses `(f ∨ x)(¬f ∨ ¬x)` or
/// `(f ∨ ¬x)(¬f ∨ x)`.
fn try_not_buf(clauses: &[Clause], output: Var) -> Option<Expr> {
    if clauses.len() != 2 || clauses.iter().any(|c| c.len() != 2) {
        return None;
    }
    let other = |c: &Clause| c.lits().iter().copied().find(|l| l.var() != output);
    let out_lit = |c: &Clause| c.lits().iter().copied().find(|l| l.var() == output);
    let (o0, x0) = (out_lit(&clauses[0])?, other(&clauses[0])?);
    let (o1, x1) = (out_lit(&clauses[1])?, other(&clauses[1])?);
    if x0.var() != x1.var() || o0 == o1 {
        return None;
    }
    // Clause containing ¬f describes the on-set of f.
    let (_, x_on) = if o0.is_negative() { (o0, x0) } else { (o1, x1) };
    let (_, x_off) = if o0.is_negative() { (o1, x1) } else { (o0, x0) };
    // Consistency: the other literal must flip polarity between the clauses.
    if x_on == x_off {
        return None;
    }
    Some(Expr::literal(
        x_on.var().index() as VarId,
        x_on.is_positive(),
    ))
}

/// AND/OR (and complemented) signature with `n` inputs:
/// one wide clause of `n+1` literals plus `n` binary clauses.
fn try_and_or(clauses: &[Clause], output: Var) -> Option<Expr> {
    if clauses.len() < 3 {
        return None;
    }
    let wide_idx = clauses.iter().position(|c| c.len() == clauses.len())?;
    let wide = &clauses[wide_idx];
    if wide.len() != clauses.len() {
        return None;
    }
    let binaries: Vec<&Clause> = clauses
        .iter()
        .enumerate()
        .filter_map(|(i, c)| (i != wide_idx).then_some(c))
        .collect();
    if binaries.iter().any(|c| c.len() != 2) {
        return None;
    }
    let wide_out = wide.lits().iter().copied().find(|l| l.var() == output)?;
    // For OR:  (¬f ∨ x1 ∨ … ∨ xn) and (f ∨ ¬xi): wide contains ¬f.
    // For AND: (f ∨ ¬x1 ∨ … ∨ ¬xn) and (¬f ∨ xi): wide contains f.
    let mut inputs = Vec::new();
    for lit in wide.lits() {
        if lit.var() != output {
            inputs.push(*lit);
        }
    }
    // Check every binary clause is (¬wide_out ∨ ¬input_as_in_wide), with each
    // input covered by exactly one binary clause.
    let mut covered: BTreeSet<Var> = BTreeSet::new();
    for b in &binaries {
        let out_lit = b.lits().iter().copied().find(|l| l.var() == output)?;
        let in_lit = b.lits().iter().copied().find(|l| l.var() != output)?;
        if out_lit != !wide_out {
            return None;
        }
        if !inputs.contains(&!in_lit) || !covered.insert(in_lit.var()) {
            return None;
        }
    }
    if covered.len() != inputs.len() {
        return None;
    }
    let to_expr = |l: Lit| Expr::literal(l.var().index() as VarId, l.is_positive());
    if wide_out.is_negative() {
        // f = OR(inputs as they appear in the wide clause)
        Some(Expr::or(inputs.into_iter().map(to_expr).collect()))
    } else {
        // f = AND(inputs complemented relative to the wide clause)
        Some(Expr::and(inputs.into_iter().map(|l| to_expr(!l)).collect()))
    }
}

/// XOR/XNOR signature over `k` variables plus the output: `2^k` clauses, each
/// containing every variable, covering exactly the odd- or even-parity rows.
fn try_xor(clauses: &[Clause], output: Var) -> Option<Expr> {
    let vars: BTreeSet<Var> = clauses.iter().flat_map(|c| c.vars()).collect();
    let k = vars.len().checked_sub(1)?;
    if k == 0 || k > 16 || clauses.len() != (1usize << k) {
        return None;
    }
    if clauses
        .iter()
        .any(|c| c.len() != vars.len() || c.vars().count() != vars.len())
    {
        return None;
    }
    let inputs: Vec<Var> = vars.iter().copied().filter(|&v| v != output).collect();
    // Every clause (l1 ∨ … ∨ lm) forbids exactly one assignment (all literals
    // false). XOR's CNF forbids the rows where output ≠ XOR(inputs). The 2^k
    // forbidden rows must be distinct and all lie on the same parity side.
    let mut forbidden_parity: Option<bool> = None;
    let mut forbidden_rows: BTreeSet<Vec<(Var, bool)>> = BTreeSet::new();
    for clause in clauses {
        let mut parity = false;
        let mut out_val = false;
        let mut row = Vec::with_capacity(clause.len());
        for lit in clause.lits() {
            let value = lit.is_negative(); // forbidden assignment falsifies every literal
            row.push((lit.var(), value));
            if lit.var() == output {
                out_val = value;
            } else {
                parity ^= value;
            }
        }
        row.sort_unstable();
        if !forbidden_rows.insert(row) {
            return None; // duplicate clause: pattern incomplete
        }
        // For f = XOR(inputs): forbidden rows satisfy out_val != parity.
        let mismatch = out_val != parity;
        match forbidden_parity {
            None => forbidden_parity = Some(mismatch),
            Some(p) if p == mismatch => {}
            _ => return None,
        }
    }
    let operands: Vec<Expr> = inputs
        .iter()
        .map(|v| Expr::var(v.index() as VarId))
        .collect();
    match forbidden_parity? {
        true => Some(Expr::xor(operands)), // forbids out ≠ parity ⇒ f = XOR
        false => Some(Expr::not(Expr::xor(operands))), // f = XNOR
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_cnf::Cnf;
    use htsat_logic::TruthTable;

    fn clauses(spec: &[&[i64]]) -> Vec<Clause> {
        spec.iter()
            .map(|c| Clause::from_dimacs(c.iter().copied()))
            .collect()
    }

    fn assert_defines(m: &GateMatch, expected: &Expr) {
        let got = TruthTable::from_expr(&m.expr);
        let want = TruthTable::from_expr(expected);
        assert!(
            got.is_equivalent_to(&want),
            "{:?} vs {:?}",
            m.expr,
            expected
        );
    }

    #[test]
    fn recognises_inverter() {
        // f(x) = ¬x with f = var 2, x = var 1: (f ∨ x)(¬f ∨ ¬x)
        let group = clauses(&[&[2, 1], &[-2, -1]]);
        let m = match_gate(&group, |_| true).expect("match");
        assert_eq!(m.output, Var::new(2));
        assert_defines(&m, &Expr::not(Expr::var(1)));
    }

    #[test]
    fn recognises_buffer() {
        // f = x: (¬f ∨ x)(f ∨ ¬x)
        let group = clauses(&[&[-2, 1], &[2, -1]]);
        let m = match_gate(&group, |_| true).expect("match");
        assert_eq!(m.output, Var::new(2));
        assert_defines(&m, &Expr::var(1));
    }

    #[test]
    fn recognises_or_gate() {
        // f = x1 ∨ x2, f = var 3: (¬f ∨ x1 ∨ x2)(f ∨ ¬x1)(f ∨ ¬x2)
        let group = clauses(&[&[-3, 1, 2], &[3, -1], &[3, -2]]);
        let m = match_gate(&group, |_| true).expect("match");
        assert_eq!(m.output, Var::new(3));
        assert_defines(&m, &Expr::or(vec![Expr::var(1), Expr::var(2)]));
    }

    #[test]
    fn recognises_and_gate() {
        // f = x1 ∧ x2 ∧ x3, f = var 4
        let group = clauses(&[&[4, -1, -2, -3], &[-4, 1], &[-4, 2], &[-4, 3]]);
        let m = match_gate(&group, |_| true).expect("match");
        assert_eq!(m.output, Var::new(4));
        assert_defines(
            &m,
            &Expr::and(vec![Expr::var(1), Expr::var(2), Expr::var(3)]),
        );
    }

    #[test]
    fn recognises_two_input_xor() {
        // f = x1 ⊕ x2, f = var 3: forbid rows where f ≠ x1⊕x2.
        let group = clauses(&[&[-3, 1, 2], &[-3, -1, -2], &[3, 1, -2], &[3, -1, 2]]);
        let m = match_gate(&group, |_| true).expect("match");
        assert_eq!(m.output, Var::new(3));
        assert_defines(&m, &Expr::xor(vec![Expr::var(1), Expr::var(2)]));
    }

    #[test]
    fn recognises_two_input_xnor() {
        let group = clauses(&[&[3, 1, 2], &[3, -1, -2], &[-3, 1, -2], &[-3, -1, 2]]);
        let m = match_gate(&group, |_| true).expect("match");
        assert_defines(&m, &Expr::not(Expr::xor(vec![Expr::var(1), Expr::var(2)])));
    }

    #[test]
    fn rejects_mux_pattern() {
        // The paper's Eq. (5) MUX-like group is not a primitive-gate signature.
        let group = clauses(&[&[-4, -107, 5], &[-4, 107, -5], &[4, -108, 5], &[4, 108, -5]]);
        assert!(match_gate(&group, |_| true).is_none());
    }

    #[test]
    fn respects_eligibility_filter() {
        let group = clauses(&[&[2, 1], &[-2, -1]]);
        // Variable 2 is not eligible (e.g. already a primary input), so the
        // symmetric reading with variable 1 as the output is chosen instead.
        let m = match_gate(&group, |v| v != Var::new(2)).expect("fallback output");
        assert_eq!(m.output, Var::new(1));
        assert_defines(&m, &Expr::not(Expr::var(2)));
        // With both variables ineligible there is no match at all.
        assert!(match_gate(&group, |_| false).is_none());
    }

    #[test]
    fn matched_gate_is_equisatisfiable_with_group() {
        // For every assignment, the clause group is satisfied iff out == expr.
        let group = clauses(&[&[-3, 1, 2], &[3, -1], &[3, -2]]);
        let m = match_gate(&group, |_| true).expect("match");
        let mut cnf = Cnf::new(3);
        for c in &group {
            cnf.push_clause(c.clone());
        }
        for bits in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let clauses_ok = cnf.is_satisfied_by_bits(&assignment);
            let expr_val = m.expr.eval_with(|v| assignment[(v - 1) as usize]);
            let out_val = assignment[m.output.as_usize()];
            assert_eq!(clauses_ok, expr_val == out_val, "bits {bits:03b}");
        }
    }
}
