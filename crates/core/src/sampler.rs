//! Gradient-descent SAT sampling over the transformed circuit.
//!
//! The sampler reproduces the training loop of the paper: a batch of input
//! logits `V ∈ R^{b×n}` is embedded into probabilities with a clamped
//! sigmoid ([`ops::embed_logit`]), the probabilistic circuit maps them to
//! output probabilities, an ℓ2 loss against the constrained targets is
//! minimised with plain gradient descent (learning rate 10, five iterations
//! by default), the logits are hardened to bits, validated against the
//! *original* CNF and deduplicated.
//!
//! By default the inner loop runs on the fused
//! [`htsat_tensor::FlatKernel`]: embedding, forward, backward, chain rule
//! and the descent update execute as one pass per row over a flat circuit
//! layout, writing into per-worker [`htsat_tensor::Workspace`]s and
//! updating the persistent logit matrix in place — zero allocations per
//! row. [`KernelChoice::Reference`] selects the stage-by-stage
//! [`htsat_tensor::SoftCircuit`] baseline, which computes the identical
//! math (bit for bit) and exists to verify the kernel.
//!
//! The primary consumption API is **streaming**: [`GdSampler::stream`]
//! returns a [`SampleStream`] — a lazy `Iterator` of unique solutions that
//! runs gradient-descent rounds on demand on the configured
//! [`Backend`], deduplicates incrementally and supports cancellation
//! (stop token) and deadlines. The blocking [`GdSampler::sample`] call is a
//! thin wrapper that collects the stream.
//!
//! Sampling is deterministic in the seed *and independent of the thread
//! count*: every batch row draws its logits from a private RNG stream
//! derived with [`htsat_runtime::derive_stream_seed`], and rounds emit rows
//! in index order, so `Backend::Threads(1)` and `Backend::Threads(8)`
//! produce the identical solution sequence for the same seed.

use crate::compile::{compile, CompiledCircuit};
use crate::transform::{transform_with_config, TransformConfig, TransformResult};
use crate::TransformError;
use htsat_cnf::{Cnf, Var};
use htsat_runtime::{derive_stream_seed, RoundSource, SampleStream, StopToken};
use htsat_tensor::{ops, Backend, BatchMatrix, MemoryModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Which execution form of the compiled circuit the gradient-descent inner
/// loop runs on.
///
/// Both forms compute the identical math — the flat kernel replicates the
/// reference implementation operation for operation, so for the same seed
/// they produce the identical solution sequence (asserted by tests and the
/// CI corpus-equivalence step). The choice only affects speed and memory
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// The fused allocation-free [`htsat_tensor::FlatKernel`] path:
    /// sigmoid embedding, forward, backward, chain rule and the descent
    /// update in one pass per row, out of per-worker workspaces. The
    /// default.
    #[default]
    Flat,
    /// The [`htsat_tensor::SoftCircuit`] reference path: one pass per
    /// stage, with a probability-matrix clone per iteration. Kept as the
    /// auditable baseline the flat kernel is verified against.
    Reference,
}

/// Configuration of the gradient-descent sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Number of candidate assignments learned in parallel per round.
    pub batch_size: usize,
    /// Gradient-descent iterations per round (the paper uses 5).
    pub iterations: usize,
    /// Learning rate γ (the paper uses 10). Must be positive and finite.
    pub learning_rate: f32,
    /// Execution backend for the batch dimension: `Sequential` (the CPU
    /// baseline), `Threads(n)` (the runtime pool, the GPU stand-in and the
    /// default) or `DataParallel` (the rayon API).
    pub backend: Backend,
    /// Seed of the sampler's RNG (logit initialisation and free variables).
    pub seed: u64,
    /// Scale of the uniform logit initialisation `V ~ U(-s, s)`. Must be
    /// positive and finite.
    pub init_scale: f32,
    /// Execution form of the inner loop: the fused flat kernel (default)
    /// or the reference circuit.
    pub kernel: KernelChoice,
    /// Options forwarded to the CNF-to-circuit transformation.
    pub transform: TransformConfig,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            batch_size: 256,
            iterations: 5,
            learning_rate: 10.0,
            backend: Backend::default(),
            seed: 0,
            init_scale: 2.0,
            kernel: KernelChoice::default(),
            transform: TransformConfig::default(),
        }
    }
}

/// The outcome of a sampling run.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Unique satisfying assignments over the original CNF variables.
    pub solutions: Vec<Vec<bool>>,
    /// Total candidate assignments evaluated (batch size × rounds).
    pub attempts: usize,
    /// Candidates that hardened into valid (possibly duplicate) solutions.
    pub valid: usize,
    /// Number of gradient-descent rounds executed.
    pub rounds: usize,
    /// Wall-clock time of the sampling loop (excluding transformation).
    pub elapsed: Duration,
}

impl SampleReport {
    /// The smallest elapsed time [`SampleReport::throughput`] divides by:
    /// one microsecond, the resolution the repro tables report at.
    /// (Re-exported from [`htsat_runtime::MIN_MEASURABLE_TICK`], the one
    /// definition every reporting layer shares.)
    pub const MIN_MEASURABLE_TICK: Duration = htsat_runtime::MIN_MEASURABLE_TICK;

    /// Unique-solution throughput in **unique solutions per second** — the
    /// headline metric of the paper's Table II.
    ///
    /// Delegates to [`htsat_runtime::unique_throughput`], which clamps the
    /// denominator to [`SampleReport::MIN_MEASURABLE_TICK`]: a run that
    /// completes faster than the clock can resolve yields the finite upper
    /// bound `solutions / 1µs` instead of silently returning the raw
    /// solution *count* (which repro tables would then print as a rate).
    pub fn throughput(&self) -> f64 {
        htsat_runtime::unique_throughput(self.solutions.len(), self.elapsed)
    }

    /// Fraction of candidates that hardened into valid solutions.
    pub fn valid_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.valid as f64 / self.attempts as f64
    }
}

/// A formula carried through transformation and compilation, ready to mint
/// samplers without repeating either stage.
///
/// This is the reuse hook of the serving layer: a long-lived registry keeps
/// one `PreparedFormula` per formula fingerprint and builds a fresh
/// [`GdSampler`] per request with [`PreparedFormula::sampler`]. The
/// immutable artifacts (CNF, transform result, compiled circuit) are held
/// behind [`Arc`]s and *shared* with every minted sampler — per-request
/// cost is three reference-count bumps plus the sampler's own mutable
/// state (logit matrix, RNG, dedup set), not a copy of the circuit. The
/// minted sampler is bit-identical to one built with [`GdSampler::new`]
/// from the same CNF and configuration, so determinism survives the reuse
/// path.
#[derive(Debug, Clone)]
pub struct PreparedFormula {
    cnf: Arc<Cnf>,
    transform_config: TransformConfig,
    transform: Arc<TransformResult>,
    compiled: Arc<CompiledCircuit>,
    /// Template the engine API mints sessions from: a full [`SamplerConfig`]
    /// whose seed/backend/batch are overridden per request.
    template: SamplerConfig,
}

impl PreparedFormula {
    /// Runs the CNF-to-circuit transformation and compiles both execution
    /// forms, capturing everything a sampler needs except the run-time
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] if the formula is structurally
    /// unsatisfiable.
    pub fn prepare(cnf: &Cnf, transform_config: &TransformConfig) -> Result<Self, TransformError> {
        let transform = transform_with_config(cnf, transform_config)?;
        Ok(Self::from_transformed(cnf, transform_config, transform))
    }

    /// Builds a prepared formula from an already transformed netlist —
    /// the warm path of an on-disk artifact cache, where the expensive
    /// transformation was deserialized instead of re-run. Only the cheap
    /// mechanical circuit compilation happens here.
    ///
    /// The caller is responsible for `transform` actually being the result
    /// of transforming `cnf` under `transform_config`; nothing re-verifies
    /// that correspondence.
    pub fn from_transformed(
        cnf: &Cnf,
        transform_config: &TransformConfig,
        transform: TransformResult,
    ) -> Self {
        let compiled = compile(&transform);
        PreparedFormula {
            cnf: Arc::new(cnf.clone()),
            transform_config: transform_config.clone(),
            transform: Arc::new(transform),
            compiled: Arc::new(compiled),
            template: SamplerConfig {
                transform: transform_config.clone(),
                ..SamplerConfig::default()
            },
        }
    }

    /// Sets the [`SamplerConfig`] template that
    /// [`SampleEngine::session`](crate::SampleEngine::session) mints from,
    /// for GD-specific knobs the generic [`crate::SessionConfig`] does not
    /// carry (kernel choice, iterations, learning rate, default batch).
    ///
    /// `template.transform` is overwritten with the configuration the
    /// artifacts were actually prepared with (see
    /// [`PreparedFormula::sampler`] for why mixing them would be unsound).
    #[must_use]
    pub fn with_template(mut self, mut template: SamplerConfig) -> Self {
        template.transform = self.transform_config.clone();
        self.template = template;
        self
    }

    /// The original CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The transformation result backing the prepared artifacts (variable
    /// classification, netlist, transformation statistics).
    pub fn transform_result(&self) -> &TransformResult {
        &self.transform
    }

    /// The transformation configuration the artifacts were built with.
    pub fn transform_config(&self) -> &TransformConfig {
        &self.transform_config
    }

    /// Number of learnable input columns of the compiled circuit.
    pub fn num_inputs(&self) -> usize {
        self.compiled.num_inputs()
    }

    /// Number of nodes of the compiled circuit.
    pub fn num_nodes(&self) -> usize {
        self.compiled.circuit.num_nodes()
    }

    /// Widest gate fan-in of the compiled kernel (sizes workspace scratch).
    pub fn max_fanin(&self) -> usize {
        self.compiled.kernel.max_fanin()
    }

    /// Memory model of a sampling round at `batch` rows over `workers`
    /// pool workers — the quantity a serving registry budgets by.
    pub fn memory_model(&self, batch: usize, workers: usize) -> MemoryModel {
        MemoryModel::new(self.num_inputs(), self.num_nodes(), batch)
            .with_workers(workers)
            .with_max_fanin(self.max_fanin())
    }

    /// Builds a sampler from the prepared artifacts, skipping the
    /// transformation and compilation stages entirely and sharing the
    /// artifacts by reference count (no circuit copy).
    ///
    /// `config.transform` is ignored: the artifacts were built with
    /// [`PreparedFormula::transform_config`], and silently mixing two
    /// transformation configurations would produce a sampler whose circuit
    /// does not match its configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError::InvalidConfig`] for the same invalid
    /// run-time configurations [`GdSampler::new`] rejects.
    pub fn sampler(&self, mut config: SamplerConfig) -> Result<GdSampler, TransformError> {
        config.transform = self.transform_config.clone();
        validate_sampler_config(&config)?;
        Ok(GdSampler::from_parts(
            self.cnf.clone(),
            self.transform.clone(),
            self.compiled.clone(),
            config,
        ))
    }
}

/// The paper's sampler as a [`crate::SampleEngine`]: the prepared formula
/// *is* the engine ("gd" on the wire), and a session is a freshly minted
/// [`GdSampler`] — three reference-count bumps plus the per-request mutable
/// state, no recompilation.
impl crate::SampleEngine for PreparedFormula {
    fn name(&self) -> &'static str {
        "gd"
    }

    fn cnf(&self) -> &Cnf {
        PreparedFormula::cnf(self)
    }

    fn session(
        &self,
        config: &crate::SessionConfig,
    ) -> Result<crate::BoxedSession, TransformError> {
        let mut sampler_config = self.template.clone();
        sampler_config.seed = config.seed;
        sampler_config.backend = config.backend;
        if let Some(batch) = config.batch {
            sampler_config.batch_size = batch;
        }
        Ok(Box::new(self.sampler(sampler_config)?))
    }

    fn memory_model(&self, batch: usize, workers: usize) -> MemoryModel {
        PreparedFormula::memory_model(self, batch, workers)
    }

    fn artifact_dims(&self) -> Vec<(&'static str, usize)> {
        vec![("inputs", self.num_inputs()), ("nodes", self.num_nodes())]
    }
}

/// Rejects run-time configurations that would poison or panic the sampling
/// loop (zero batch/iterations; NaN, infinite or non-positive learning rate
/// or initialisation scale).
fn validate_sampler_config(config: &SamplerConfig) -> Result<(), TransformError> {
    if config.batch_size == 0 {
        return Err(TransformError::InvalidConfig(
            "batch size must be non-zero".into(),
        ));
    }
    if config.iterations == 0 {
        return Err(TransformError::InvalidConfig(
            "iterations must be non-zero".into(),
        ));
    }
    // A NaN learning rate or scale would silently poison every logit;
    // a non-positive scale panics inside `gen_range`. Reject both here.
    if !(config.learning_rate.is_finite() && config.learning_rate > 0.0) {
        return Err(TransformError::InvalidConfig(format!(
            "learning rate must be positive and finite, got {}",
            config.learning_rate
        )));
    }
    if !(config.init_scale.is_finite() && config.init_scale > 0.0) {
        return Err(TransformError::InvalidConfig(format!(
            "init scale must be positive and finite, got {}",
            config.init_scale
        )));
    }
    Ok(())
}

/// The gradient-descent SAT sampler: transformation, compilation and the
/// batched learning loop behind one API.
pub struct GdSampler {
    cnf: Arc<Cnf>,
    transform: Arc<TransformResult>,
    compiled: Arc<CompiledCircuit>,
    config: SamplerConfig,
    rng: SmallRng,
    seen: HashSet<Vec<bool>>,
    /// The batch logit matrix, allocated once and reused every round: the
    /// fused kernel updates it in place, so the GD inner loop performs no
    /// per-row (or per-iteration) allocations.
    logits: BatchMatrix,
}

impl GdSampler {
    /// Builds a sampler for `cnf`: runs the CNF-to-circuit transformation and
    /// compiles the differentiable circuit (both the reference form and the
    /// flat fused kernel).
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] if the formula is structurally
    /// unsatisfiable or the configuration is invalid (zero batch size or
    /// iterations; NaN, infinite or non-positive learning rate or
    /// initialisation scale).
    pub fn new(cnf: &Cnf, config: SamplerConfig) -> Result<Self, TransformError> {
        validate_sampler_config(&config)?;
        let transform = transform_with_config(cnf, &config.transform)?;
        let compiled = compile(&transform);
        Ok(GdSampler::from_parts(
            Arc::new(cnf.clone()),
            Arc::new(transform),
            Arc::new(compiled),
            config,
        ))
    }

    /// Assembles a sampler from already-built artifacts. The configuration
    /// must have been validated and the artifacts must belong to `cnf`.
    fn from_parts(
        cnf: Arc<Cnf>,
        transform: Arc<TransformResult>,
        compiled: Arc<CompiledCircuit>,
        config: SamplerConfig,
    ) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        let logits = BatchMatrix::zeros(config.batch_size, compiled.num_inputs());
        GdSampler {
            cnf,
            transform,
            compiled,
            config,
            rng,
            seen: HashSet::new(),
            logits,
        }
    }

    /// The transformation result backing this sampler.
    pub fn transform_result(&self) -> &TransformResult {
        &self.transform
    }

    /// The sampler configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Memory model of one sampling round at the configured batch size — the
    /// quantity plotted in the paper's Fig. 3 (right), under the
    /// workspace-based buffer model (persistent logits per batch row,
    /// one workspace per pool worker).
    pub fn memory_model(&self) -> MemoryModel {
        self.memory_model_for_batch(self.config.batch_size)
    }

    /// Memory model at an arbitrary batch size. Reflects the configured
    /// [`KernelChoice`]: the staged reference path keeps two extra
    /// `[batch, inputs]` matrices resident per iteration (the cloned
    /// probabilities and the gradient matrix) that the fused path does not.
    pub fn memory_model_for_batch(&self, batch: usize) -> MemoryModel {
        let staged = match self.config.kernel {
            KernelChoice::Flat => 0,
            KernelChoice::Reference => 2,
        };
        MemoryModel::new(
            self.compiled.num_inputs(),
            self.compiled.circuit.num_nodes(),
            batch,
        )
        .with_workers(self.config.backend.effective_threads())
        .with_max_fanin(self.compiled.kernel.max_fanin())
        .with_staged_matrices(staged)
    }

    /// Runs one gradient-descent round and returns the valid (but not
    /// deduplicated) hardened assignments.
    pub fn sample_round(&mut self) -> Vec<Vec<bool>> {
        self.sample_round_cancellable(&StopToken::new())
    }

    /// Like [`GdSampler::sample_round`], but polls `stop` during the
    /// gradient-descent loop and per hardened row, returning early (with an
    /// empty or partial batch) once it is set.
    pub fn sample_round_cancellable(&mut self, stop: &StopToken) -> Vec<Vec<bool>> {
        let batch = self.config.batch_size;
        let n = self.compiled.num_inputs();
        let scale = self.config.init_scale;
        let backend = self.config.backend;
        // One master draw per round; every row then owns a private RNG
        // stream, so the initialisation (and therefore the produced samples)
        // is a function of (seed, row) alone — not of the thread count.
        let round_seed: u64 = self.rng.gen();
        let logits = &mut self.logits;
        backend.for_each_row(logits.as_mut_slice(), n, |b, row| {
            let mut row_rng = SmallRng::seed_from_u64(derive_stream_seed(round_seed, b));
            for v in row.iter_mut() {
                *v = row_rng.gen_range(-scale..=scale);
            }
            0.0
        });

        let iterations = self.config.iterations;
        let learning_rate = self.config.learning_rate;
        match self.config.kernel {
            KernelChoice::Flat => {
                // The fused hot path: one parallel region runs every row's
                // whole gradient-descent trajectory (rows are independent),
                // each worker reusing one preallocated workspace. The kernel
                // embeds, evaluates, differentiates and descends in a single
                // pass per iteration with zero allocations per row.
                let kernel = &self.compiled.kernel;
                backend.for_each_row_with(
                    logits.as_mut_slice(),
                    n,
                    || kernel.workspace(),
                    |_, row, ws| {
                        let mut loss = 0.0;
                        for _ in 0..iterations {
                            if stop.is_stopped() {
                                break;
                            }
                            loss = kernel.fused_gd_step(row, learning_rate, ws);
                        }
                        loss
                    },
                );
                if stop.is_stopped() {
                    return Vec::new();
                }
            }
            KernelChoice::Reference => {
                // The auditable baseline: the same math in one pass per
                // stage over the whole batch. Kept for verification; the
                // flat path above must match it bit for bit.
                for _ in 0..iterations {
                    if stop.is_stopped() {
                        return Vec::new();
                    }
                    // Continuous embedding: P = clamp(σ(V)).
                    let mut probs = logits.clone();
                    probs.map_inplace(ops::embed_logit);
                    let (_loss, grad_p) =
                        self.compiled.circuit.loss_and_input_grads(&probs, backend);
                    // Chain rule through the sigmoid: dL/dV = dL/dP · σ'(P).
                    let mut grad_v = grad_p;
                    for (g, &p) in grad_v
                        .as_mut_slice()
                        .iter_mut()
                        .zip(probs.as_slice().iter())
                    {
                        *g *= ops::sigmoid_grad_from_output(p);
                    }
                    logits.saxpy_neg(learning_rate, &grad_v);
                }
            }
        }
        let logits = &self.logits;

        // Harden, reconstruct full assignments and validate against the CNF.
        let num_vars = self.cnf.num_vars();
        let free_seed: u64 = self.rng.gen();
        let rows: Vec<Option<Vec<bool>>> = self.config.backend.map_indices(batch, |b| {
            if stop.is_stopped() {
                return None;
            }
            let row = logits.row(b);
            let input_value = |v: Var| {
                self.compiled
                    .column_of(v)
                    .map(|c| row[c] > 0.0)
                    .unwrap_or(false)
            };
            // Unbound variables are unconstrained: randomise them per sample
            // for extra diversity, deterministically from the seed.
            let free_value = |v: Var| {
                let mut h = free_seed ^ (b as u64).wrapping_mul(0x9e3779b97f4a7c15);
                h ^= (v.index() as u64).wrapping_mul(0xd6e8feb86659fd93);
                h = h.wrapping_mul(0x2545f4914f6cdd1d);
                (h >> 63) & 1 == 1
            };
            let bits = self
                .transform
                .assignment_from_inputs(input_value, free_value);
            debug_assert_eq!(bits.len(), num_vars);
            if self.cnf.is_satisfied_by_bits(&bits) {
                Some(bits)
            } else {
                None
            }
        });
        rows.into_iter().flatten().collect()
    }

    /// Returns a lazy stream of unique solutions, borrowing the sampler.
    ///
    /// The stream runs gradient-descent rounds on demand and deduplicates
    /// incrementally — including against solutions returned by previous
    /// `sample`/`stream` calls on this sampler. Deadlines, stale-round
    /// limits and an external stop token can be attached with the
    /// [`SampleStream`] builder methods:
    ///
    /// ```
    /// # use htsat_cnf::Cnf;
    /// # use htsat_core::{GdSampler, SamplerConfig};
    /// # let mut cnf = Cnf::new(3);
    /// # cnf.add_dimacs_clause([1, 2, 3]);
    /// # let mut sampler = GdSampler::new(&cnf, SamplerConfig::default())?;
    /// let solutions: Vec<Vec<bool>> = sampler.stream().take(3).collect();
    /// assert_eq!(solutions.len(), 3);
    /// # Ok::<(), htsat_core::TransformError>(())
    /// ```
    pub fn stream(&mut self) -> SampleStream<&mut GdSampler> {
        SampleStream::new(self)
    }

    /// Consumes the sampler into an owning stream of unique solutions.
    ///
    /// Like [`GdSampler::stream`] but `'static`: the stream can be moved to
    /// another thread or stored, which is what a long-lived sampling service
    /// needs.
    pub fn into_stream(self) -> SampleStream<GdSampler> {
        SampleStream::new(self)
    }

    /// Samples until at least `min_solutions` unique solutions are collected
    /// or `timeout` elapses, whichever comes first.
    ///
    /// This is a thin wrapper that collects [`GdSampler::stream`]: it drives
    /// the stream until the target is met, the deadline passes, or eight
    /// consecutive rounds stop producing new solutions (a formula with fewer
    /// solutions than the target would otherwise burn the whole timeout
    /// re-discovering known models). Unique solutions discovered by the
    /// final round beyond `min_solutions` are included, and solutions found
    /// in previous calls are remembered, so repeated calls keep extending
    /// the unique set.
    pub fn sample(&mut self, min_solutions: usize, timeout: Duration) -> SampleReport {
        let mut stream = self.stream().with_timeout(timeout);
        let mut solutions: Vec<Vec<bool>> = stream.by_ref().take(min_solutions).collect();
        // The final round usually discovers more unique solutions than the
        // `take` consumed; deliver them instead of hiding them in the
        // dedup-filter (the pre-streaming API returned them too).
        solutions.append(&mut stream.drain_ready());
        let stats = *stream.stats();
        let elapsed = stream.elapsed();
        SampleReport {
            solutions,
            attempts: stats.attempts,
            valid: stats.valid,
            rounds: stats.rounds,
            elapsed,
        }
    }

    /// Clears the memory of previously returned solutions.
    pub fn reset_unique_filter(&mut self) {
        self.seen.clear();
    }
}

/// A [`GdSampler`] is a round source for the runtime's streaming service:
/// one round is one cancellable gradient-descent batch, and the sampler's
/// cross-call dedup memory is lent to the stream for its lifetime.
impl RoundSource for GdSampler {
    type Item = Vec<bool>;

    fn round(&mut self, stop: &StopToken) -> Vec<Vec<bool>> {
        self.sample_round_cancellable(stop)
    }

    fn round_size(&self) -> usize {
        self.config.batch_size
    }

    fn take_seen(&mut self) -> HashSet<Vec<bool>> {
        std::mem::take(&mut self.seen)
    }

    fn restore_seen(&mut self, seen: HashSet<Vec<bool>>) {
        self.seen = seen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_cnf::dimacs;

    fn mux_constrained_cnf() -> Cnf {
        // x5 = MUX(x4; x2, x3) with x5 = 1 and x4 = ¬x1.
        dimacs::parse_str(
            "p cnf 5 7\n\
             -1 -4 0\n1 4 0\n\
             -4 -2 5 0\n-4 2 -5 0\n4 -3 5 0\n4 3 -5 0\n\
             5 0\n",
        )
        .expect("valid DIMACS")
    }

    #[test]
    fn sampler_finds_valid_solutions() {
        let cnf = mux_constrained_cnf();
        let mut sampler = GdSampler::new(&cnf, SamplerConfig::default()).expect("build");
        let report = sampler.sample(4, Duration::from_secs(10));
        assert!(!report.solutions.is_empty());
        for s in &report.solutions {
            assert!(cnf.is_satisfied_by_bits(s));
        }
        assert!(report.valid_rate() > 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn solutions_are_unique() {
        let cnf = mux_constrained_cnf();
        let mut sampler = GdSampler::new(&cnf, SamplerConfig::default()).expect("build");
        let report = sampler.sample(8, Duration::from_secs(10));
        let set: HashSet<&Vec<bool>> = report.solutions.iter().collect();
        assert_eq!(set.len(), report.solutions.len());
    }

    #[test]
    fn repeated_sampling_does_not_return_duplicates() {
        let cnf = mux_constrained_cnf();
        let mut sampler = GdSampler::new(&cnf, SamplerConfig::default()).expect("build");
        let first = sampler.sample(4, Duration::from_secs(5));
        let second = sampler.sample(4, Duration::from_secs(5));
        for s in &second.solutions {
            assert!(!first.solutions.contains(s), "duplicate across calls");
        }
    }

    #[test]
    fn sequential_and_parallel_backends_both_work() {
        let cnf = mux_constrained_cnf();
        for backend in [Backend::Sequential, Backend::DataParallel] {
            let config = SamplerConfig {
                backend,
                batch_size: 64,
                ..SamplerConfig::default()
            };
            let mut sampler = GdSampler::new(&cnf, config).expect("build");
            let report = sampler.sample(2, Duration::from_secs(10));
            assert!(!report.solutions.is_empty(), "backend {backend:?}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cnf = mux_constrained_cnf();
        let rejected = |config: SamplerConfig| {
            matches!(
                GdSampler::new(&cnf, config),
                Err(TransformError::InvalidConfig(_))
            )
        };
        assert!(rejected(SamplerConfig {
            batch_size: 0,
            ..SamplerConfig::default()
        }));
        assert!(rejected(SamplerConfig {
            iterations: 0,
            ..SamplerConfig::default()
        }));
        // A NaN learning rate or init scale silently poisons every logit; a
        // non-positive init scale panics inside gen_range. All rejected.
        for learning_rate in [f32::NAN, 0.0, -1.0, f32::INFINITY] {
            assert!(
                rejected(SamplerConfig {
                    learning_rate,
                    ..SamplerConfig::default()
                }),
                "learning_rate {learning_rate} must be rejected"
            );
        }
        for init_scale in [f32::NAN, 0.0, -2.0, f32::NEG_INFINITY] {
            assert!(
                rejected(SamplerConfig {
                    init_scale,
                    ..SamplerConfig::default()
                }),
                "init_scale {init_scale} must be rejected"
            );
        }
    }

    #[test]
    fn flat_and_reference_kernels_produce_identical_solution_sequences() {
        let cnf = mux_constrained_cnf();
        for backend in [Backend::Sequential, Backend::Threads(2)] {
            let run = |kernel: KernelChoice| {
                let config = SamplerConfig {
                    batch_size: 64,
                    backend,
                    kernel,
                    ..SamplerConfig::default()
                };
                let mut sampler = GdSampler::new(&cnf, config).expect("build");
                let mut rounds = Vec::new();
                for _ in 0..3 {
                    rounds.push(sampler.sample_round());
                }
                rounds
            };
            let flat = run(KernelChoice::Flat);
            let reference = run(KernelChoice::Reference);
            assert_eq!(flat, reference, "backend {backend:?}");
            assert!(flat.iter().any(|round| !round.is_empty()));
        }
    }

    #[test]
    fn throughput_is_finite_when_elapsed_rounds_to_zero() {
        let report = SampleReport {
            solutions: vec![vec![true]; 5],
            attempts: 5,
            valid: 5,
            rounds: 1,
            elapsed: Duration::ZERO,
        };
        // Clamped to the minimum measurable tick (1µs): an upper bound in
        // solutions *per second*, never the raw count.
        let expected = 5.0 / SampleReport::MIN_MEASURABLE_TICK.as_secs_f64();
        assert!((report.throughput() - expected).abs() < 1e-3);
        assert!(report.throughput().is_finite());
    }

    #[test]
    fn memory_model_scales_with_batch() {
        let cnf = mux_constrained_cnf();
        let sampler = GdSampler::new(&cnf, SamplerConfig::default()).expect("build");
        let small = sampler.memory_model_for_batch(100).total_bytes();
        let large = sampler.memory_model_for_batch(10_000).total_bytes();
        assert!(large > small);
    }

    #[test]
    fn prepared_formula_mints_bit_identical_samplers() {
        let cnf = mux_constrained_cnf();
        let prepared =
            PreparedFormula::prepare(&cnf, &TransformConfig::default()).expect("prepare");
        for threads in [1usize, 4] {
            let config = SamplerConfig {
                batch_size: 64,
                seed: 99,
                backend: Backend::Threads(threads),
                ..SamplerConfig::default()
            };
            // The reuse path (no transform/compile) must reproduce the exact
            // solution sequence of the from-scratch path.
            let mut fresh = GdSampler::new(&cnf, config.clone()).expect("fresh");
            let mut minted = prepared.sampler(config).expect("minted");
            let from_scratch: Vec<Vec<bool>> = fresh.stream().take(6).collect();
            let reused: Vec<Vec<bool>> = minted.stream().take(6).collect();
            assert_eq!(from_scratch, reused, "threads={threads}");
        }
        assert_eq!(
            prepared.num_inputs(),
            prepared.memory_model(1, 1).num_inputs
        );
        assert!(prepared.num_nodes() > 0);
        assert!(prepared.memory_model(256, 4).total_bytes() > 0);
    }

    #[test]
    fn prepared_formula_rejects_invalid_runtime_configs() {
        let cnf = mux_constrained_cnf();
        let prepared =
            PreparedFormula::prepare(&cnf, &TransformConfig::default()).expect("prepare");
        let invalid = SamplerConfig {
            batch_size: 0,
            ..SamplerConfig::default()
        };
        assert!(matches!(
            prepared.sampler(invalid),
            Err(TransformError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unconstrained_formula_samples_diverse_assignments() {
        // Four free variables (single tautology-free loose clause each).
        let mut cnf = Cnf::new(4);
        cnf.add_dimacs_clause([1, 2, 3, 4]);
        let config = SamplerConfig {
            batch_size: 128,
            ..SamplerConfig::default()
        };
        let mut sampler = GdSampler::new(&cnf, config).expect("build");
        let report = sampler.sample(8, Duration::from_secs(10));
        assert!(
            report.solutions.len() >= 8,
            "found {}",
            report.solutions.len()
        );
    }
}
