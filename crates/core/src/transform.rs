//! Algorithm 1: transforming a CNF into an equisatisfiable multi-level,
//! multi-output Boolean function.
//!
//! The transformation scans the clause list in order, accumulating a window
//! of not-yet-explained sub-clauses (`SC` in the paper). After each clause it
//! tries to recognise the window (or the part of it mentioning a candidate
//! output variable) as the Tseitin encoding of a Boolean sub-expression:
//!
//! * the candidate's *on-set* expression `f` is derived from the clauses
//!   containing the candidate negated (dropping the candidate literal),
//! * the candidate's *off-set* expression `g` is derived from the clauses
//!   containing the candidate positively,
//! * if `f = ¬g` (checked exactly on truth tables), the clause group is
//!   equivalent to `candidate ⇔ f`, the candidate becomes an intermediate
//!   variable driven by `f` in the netlist, and the group is consumed.
//!
//! Constant expressions mark the candidate as a *primary output* with an
//! explicit target value; windows that stop sharing variables with the rest
//! of the formula (or exceed a size budget) are flushed as auxiliary
//! constraints whose conjunction is constrained to 1 — exactly the paper's
//! handling of under-specified sub-clauses.
//!
//! Two deliberate robustness deviations from the pseudo-code are documented
//! in `DESIGN.md`: only the clauses mentioning the accepted candidate are
//! consumed from the window (the paper clears the whole window), and windows
//! larger than [`TransformConfig::max_group_clauses`] are flushed as
//! auxiliary constraints to bound worst-case cost. Both preserve
//! equisatisfiability.

use crate::{signature, TransformError};
use htsat_cnf::{ops as cnf_ops, Clause, Cnf, Var};
use htsat_logic::{simplify, Expr, Netlist, TruthTable, VarId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Classification of a CNF variable after transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// The variable is a primary input of the extracted circuit: the sampler
    /// learns (or randomises) its value directly.
    PrimaryInput,
    /// The variable is an internal signal computed from primary inputs.
    Intermediate,
    /// The variable is constrained to a constant by the formula (a primary
    /// output in the paper's terminology).
    PrimaryOutput,
    /// The variable does not occur in any clause.
    Unused,
}

/// Options of the transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformConfig {
    /// Simplify each accepted expression (two-level minimisation) before it
    /// is added to the netlist.
    pub simplify: bool,
    /// Try the primitive-gate CNF signature matcher before the general
    /// expression derivation.
    pub use_signatures: bool,
    /// Flush the clause window as an auxiliary constraint when it grows past
    /// this many clauses.
    pub max_group_clauses: usize,
    /// Skip candidates whose derived expressions would exceed this support
    /// size (exact truth-table checks become too expensive beyond it).
    pub max_support: usize,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            simplify: true,
            use_signatures: true,
            max_group_clauses: 48,
            max_support: 12,
        }
    }
}

/// Statistics of one transformation run; the quantities behind the paper's
/// Fig. 4 (ops reduction, transformation time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformStats {
    /// Number of variables of the input CNF.
    pub cnf_vars: usize,
    /// Number of clauses of the input CNF.
    pub cnf_clauses: usize,
    /// Bit-wise operations of the CNF in 2-input gate equivalents.
    pub cnf_ops: u64,
    /// Bit-wise operations of the extracted circuit in 2-input gate
    /// equivalents.
    pub circuit_ops: u64,
    /// Clause groups recognised as Boolean sub-expressions.
    pub gate_groups: usize,
    /// Groups recognised through the primitive-gate signature fast path.
    pub signature_hits: usize,
    /// Windows flushed as auxiliary output constraints.
    pub aux_constraints: usize,
    /// Variables forced to constants (primary outputs).
    pub constant_outputs: usize,
    /// Wall-clock time spent in the transformation.
    pub transform_time: Duration,
}

impl TransformStats {
    /// The ops-reduction ratio reported in Fig. 4 (CNF ops / circuit ops).
    pub fn ops_reduction(&self) -> f64 {
        cnf_ops::reduction_ratio(self.cnf_ops, self.circuit_ops)
    }
}

/// The result of transforming a CNF: the netlist plus the variable
/// classification and statistics.
#[derive(Debug, Clone)]
pub struct TransformResult {
    /// The extracted multi-level, multi-output Boolean function.
    pub netlist: Netlist,
    classes: Vec<VarClass>,
    /// Transformation statistics.
    pub stats: TransformStats,
}

impl TransformResult {
    /// Reassembles a transformation result from its serialized parts (the
    /// on-disk artifact cache's warm path). The parts must come from a
    /// previous [`transform_with_config`] run: this constructor restores
    /// structure, it does not re-derive or re-verify the transformation.
    pub fn from_parts(netlist: Netlist, classes: Vec<VarClass>, stats: TransformStats) -> Self {
        TransformResult {
            netlist,
            classes,
            stats,
        }
    }

    /// The per-variable classification, indexed by zero-based variable.
    pub fn classes(&self) -> &[VarClass] {
        &self.classes
    }

    /// Classification of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` lies outside the transformed formula's universe.
    pub fn class_of(&self, var: Var) -> VarClass {
        self.classes[var.as_usize()]
    }

    /// Variables classified as primary inputs, in first-use order.
    pub fn primary_inputs(&self) -> Vec<Var> {
        self.netlist
            .primary_inputs()
            .iter()
            .map(|&v| Var::new(v))
            .collect()
    }

    /// Variables classified as intermediate.
    pub fn intermediate_vars(&self) -> Vec<Var> {
        self.vars_with_class(VarClass::Intermediate)
    }

    /// Variables classified as primary outputs (constrained to constants).
    pub fn primary_outputs(&self) -> Vec<Var> {
        self.vars_with_class(VarClass::PrimaryOutput)
    }

    fn vars_with_class(&self, class: VarClass) -> Vec<Var> {
        self.classes
            .iter()
            .enumerate()
            .filter(|&(_i, &c)| c == class)
            .map(|(i, &_c)| Var::from_zero_based(i))
            .collect()
    }

    /// Number of variables in the original formula's universe.
    pub fn num_vars(&self) -> usize {
        self.classes.len()
    }

    /// Reconstructs a complete assignment over the original CNF variables
    /// from primary-input values.
    ///
    /// `input_value` supplies the value of each primary-input variable;
    /// `free_value` supplies values for variables that are neither bound to a
    /// netlist node nor primary inputs (typically unused variables).
    pub fn assignment_from_inputs<F, G>(&self, input_value: F, free_value: G) -> Vec<bool>
    where
        F: Fn(Var) -> bool,
        G: Fn(Var) -> bool,
    {
        let node_values = self.netlist.evaluate(|v| input_value(Var::new(v)));
        let mut bits: Vec<bool> = (0..self.classes.len())
            .map(|i| free_value(Var::from_zero_based(i)))
            .collect();
        for (var_id, node) in self.netlist.bound_vars() {
            let idx = (var_id - 1) as usize;
            if idx < bits.len() {
                bits[idx] = node_values[node.index()];
            }
        }
        bits
    }
}

/// Transforms `cnf` into an equisatisfiable multi-level, multi-output Boolean
/// function using the default configuration.
///
/// # Errors
///
/// Returns [`TransformError::TriviallyUnsat`] if the CNF contains an empty
/// clause and [`TransformError::ConstantConflict`] if contradictory constant
/// constraints are derived for the same variable.
pub fn transform(cnf: &Cnf) -> Result<TransformResult, TransformError> {
    transform_with_config(cnf, &TransformConfig::default())
}

/// Transforms `cnf` with an explicit [`TransformConfig`].
///
/// # Errors
///
/// See [`transform`].
pub fn transform_with_config(
    cnf: &Cnf,
    config: &TransformConfig,
) -> Result<TransformResult, TransformError> {
    let start = Instant::now();
    let num_vars = cnf.num_vars();
    let mut state = TransformState {
        netlist: Netlist::new(),
        classes: vec![None; num_vars],
        pending_const: HashMap::new(),
        stats: TransformStats {
            cnf_vars: num_vars,
            cnf_clauses: cnf.num_clauses(),
            cnf_ops: cnf_ops::count_cnf_ops(cnf).total(),
            circuit_ops: 0,
            gate_groups: 0,
            signature_hits: 0,
            aux_constraints: 0,
            constant_outputs: 0,
            transform_time: Duration::ZERO,
        },
        config: config.clone(),
    };

    // Last clause index in which each variable occurs, used for the
    // "does the window share variables with subsequent clauses" test.
    let mut last_occurrence = vec![0usize; num_vars];
    for (idx, clause) in cnf.clauses().iter().enumerate() {
        for lit in clause.lits() {
            last_occurrence[lit.var().as_usize()] = idx;
        }
    }

    let mut window: Vec<Clause> = Vec::new();
    for (idx, clause) in cnf.clauses().iter().enumerate() {
        if clause.is_empty() {
            return Err(TransformError::TriviallyUnsat);
        }
        window.push(clause.clone());
        // Consume as many recognisable groups as possible.
        while state.try_extract(&mut window)? {}
        if window.is_empty() {
            continue;
        }
        let shares_future = window
            .iter()
            .flat_map(|c| c.vars())
            .any(|v| last_occurrence[v.as_usize()] > idx);
        if !shares_future || window.len() > state.config.max_group_clauses {
            state.flush_window(&mut window);
        }
    }
    if !window.is_empty() {
        state.flush_window(&mut window);
    }
    state.resolve_pending_constants()?;

    let classes: Vec<VarClass> = state
        .classes
        .iter()
        .map(|c| c.unwrap_or(VarClass::Unused))
        .collect();

    let mut stats = state.stats;
    stats.circuit_ops = state.netlist.op_count();
    stats.transform_time = start.elapsed();
    Ok(TransformResult {
        netlist: state.netlist,
        classes,
        stats,
    })
}

struct TransformState {
    netlist: Netlist,
    classes: Vec<Option<VarClass>>,
    pending_const: HashMap<VarId, bool>,
    stats: TransformStats,
    config: TransformConfig,
}

impl TransformState {
    fn is_eligible(&self, var: Var) -> bool {
        !matches!(
            self.classes[var.as_usize()],
            Some(VarClass::PrimaryInput) | Some(VarClass::Intermediate)
        )
    }

    fn mark(&mut self, var: Var, class: VarClass) {
        let slot = &mut self.classes[var.as_usize()];
        match (*slot, class) {
            // Primary-output status always wins: a variable the formula
            // constrains to a constant is an output of the circuit even if it
            // is also driven by an extracted expression (Fig. 1's x10).
            (_, VarClass::PrimaryOutput) => *slot = Some(VarClass::PrimaryOutput),
            (Some(VarClass::PrimaryOutput), _) => {}
            (Some(VarClass::Intermediate), _) => {}
            (Some(VarClass::PrimaryInput), VarClass::Intermediate) => {}
            _ => *slot = Some(class),
        }
    }

    /// Attempts to extract one Boolean sub-expression from the window.
    /// Returns `Ok(true)` when a group was consumed.
    fn try_extract(&mut self, window: &mut Vec<Clause>) -> Result<bool, TransformError> {
        // Fast path: the whole window is the signature of a primitive gate.
        if self.config.use_signatures {
            let eligible = |v: Var| self.is_eligible(v);
            if let Some(found) = signature::match_gate(window, eligible) {
                // Accept only if every window clause mentions the output (the
                // signature describes the complete group).
                if window.iter().all(|c| c.mentions(found.output)) {
                    self.stats.signature_hits += 1;
                    self.accept(found.output, found.expr, window)?;
                    return Ok(true);
                }
            }
        }
        // General path: candidate output variables in descending index order.
        // Tseitin encoders allocate gate outputs after their inputs, so the
        // highest-indexed variable of a group is the natural output choice
        // (this reproduces the classification of the paper's Fig. 1 example).
        let mut candidates: Vec<Var> = Vec::new();
        for clause in window.iter() {
            for var in clause.vars() {
                if self.is_eligible(var) && !candidates.contains(&var) {
                    candidates.push(var);
                }
            }
        }
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for candidate in candidates {
            if let Some(expr) = self.derive_expression(candidate, window) {
                self.accept(candidate, expr, window)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Derives the Boolean expression of `candidate` from the window clauses
    /// mentioning it, returning it when the on-set and off-set derivations
    /// are exact complements.
    fn derive_expression(&self, candidate: Var, window: &[Clause]) -> Option<Expr> {
        let id = candidate.index() as VarId;
        let mut on_terms = Vec::new(); // from clauses containing ¬candidate
        let mut off_terms = Vec::new(); // from clauses containing candidate
        let mut support = std::collections::BTreeSet::new();
        for clause in window.iter().filter(|c| c.mentions(candidate)) {
            let residual: Vec<Expr> = clause
                .lits()
                .iter()
                .filter(|l| l.var() != candidate)
                .map(|l| Expr::literal(l.var().index() as VarId, l.is_positive()))
                .collect();
            for l in clause.lits() {
                if l.var() != candidate {
                    support.insert(l.var().index() as VarId);
                }
            }
            let term = Expr::or(residual);
            let negated = clause
                .lits()
                .iter()
                .any(|l| l.var() == candidate && l.is_negative());
            let positive = clause
                .lits()
                .iter()
                .any(|l| l.var() == candidate && l.is_positive());
            if negated && positive {
                return None; // tautological clause mentioning candidate twice
            }
            if negated {
                on_terms.push(term);
            } else {
                off_terms.push(term);
            }
        }
        if support.len() > self.config.max_support {
            return None;
        }
        let f = Expr::and(on_terms);
        let g = Expr::and(off_terms);
        let support_vec: Vec<VarId> = support.into_iter().collect();
        let tf = TruthTable::try_from_expr_with_support(&f, &support_vec)?;
        let tg = TruthTable::try_from_expr_with_support(&g, &support_vec)?;
        if tf.is_complement_of(&tg) {
            let _ = id;
            Some(f)
        } else {
            None
        }
    }

    /// Accepts `output ⇔ expr`, updating the netlist, classifications and the
    /// window (clauses mentioning `output` are consumed).
    fn accept(
        &mut self,
        output: Var,
        expr: Expr,
        window: &mut Vec<Clause>,
    ) -> Result<(), TransformError> {
        let expr = if self.config.simplify {
            simplify::simplify(&expr)
        } else {
            expr
        };
        self.stats.gate_groups += 1;
        let consumed_vars: Vec<Var> = window
            .iter()
            .filter(|c| c.mentions(output))
            .flat_map(|c| c.vars().collect::<Vec<_>>())
            .collect();
        window.retain(|c| !c.mentions(output));

        match expr.as_const() {
            Some(value) => {
                // The clause group forces `output` to a constant: a primary output.
                let id = output.index() as VarId;
                if let Some(&prev) = self.pending_const.get(&id) {
                    if prev != value {
                        return Err(TransformError::ConstantConflict);
                    }
                } else {
                    self.pending_const.insert(id, value);
                    self.stats.constant_outputs += 1;
                }
                self.mark(output, VarClass::PrimaryOutput);
            }
            None => {
                let node = self.netlist.add_expr(&expr);
                self.netlist.bind_var(output.index() as VarId, node);
                self.mark(output, VarClass::Intermediate);
                for v in expr.support() {
                    self.mark(Var::new(v), VarClass::PrimaryInput);
                }
            }
        }
        // Remaining variables of the consumed clauses become primary inputs
        // unless already classified otherwise.
        for v in consumed_vars {
            if v != output && self.classes[v.as_usize()].is_none() {
                self.netlist.add_input(v.index() as VarId);
                self.mark(v, VarClass::PrimaryInput);
            }
        }
        Ok(())
    }

    /// Flushes the window as an auxiliary constraint: the conjunction of its
    /// clauses is constrained to 1 and its variables become inputs (or keep
    /// their intermediate drivers).
    fn flush_window(&mut self, window: &mut Vec<Clause>) {
        if window.is_empty() {
            return;
        }
        // A single unit clause over an already-driven variable is the common
        // "output forced to a constant" case of the paper's Fig. 1 (x10 = 1):
        // constrain the driver directly and classify the variable as a
        // primary output rather than introducing an auxiliary output.
        if window.len() == 1 && window[0].is_unit() {
            let lit = window[0].lits()[0];
            let id = lit.var().index() as VarId;
            if let Some(node) = self.netlist.driver_of(id) {
                self.netlist.add_output(node, lit.is_positive(), Some(id));
                self.mark(lit.var(), VarClass::PrimaryOutput);
                self.stats.constant_outputs += 1;
                window.clear();
                return;
            }
        }
        let conjuncts: Vec<Expr> = window
            .iter()
            .map(|clause| {
                Expr::or(
                    clause
                        .lits()
                        .iter()
                        .map(|l| Expr::literal(l.var().index() as VarId, l.is_positive()))
                        .collect(),
                )
            })
            .collect();
        let expr = Expr::and(conjuncts);
        let expr = if self.config.simplify && expr.support().len() <= self.config.max_support {
            simplify::simplify(&expr)
        } else {
            expr
        };
        for clause in window.iter() {
            for v in clause.vars() {
                if self.classes[v.as_usize()].is_none() {
                    self.netlist.add_input(v.index() as VarId);
                    self.mark(v, VarClass::PrimaryInput);
                }
            }
        }
        let node = self.netlist.add_expr(&expr);
        self.netlist.add_output(node, true, None);
        self.stats.aux_constraints += 1;
        window.clear();
    }

    /// Turns pending constant constraints into output constraints on the
    /// drivers of the affected variables.
    fn resolve_pending_constants(&mut self) -> Result<(), TransformError> {
        let pending: Vec<(VarId, bool)> = {
            let mut v: Vec<_> = self.pending_const.iter().map(|(&k, &b)| (k, b)).collect();
            v.sort_unstable();
            v
        };
        for (var_id, value) in pending {
            let node = match self.netlist.driver_of(var_id) {
                Some(node) => node,
                None => self.netlist.add_input(var_id),
            };
            self.netlist.add_output(node, value, Some(var_id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_cnf::dimacs;

    /// The CNF of the paper's Fig. 1 example (comments omitted).
    fn fig1_cnf() -> Cnf {
        dimacs::parse_str(
            "p cnf 14 21\n\
             -1 -2 0\n1 2 0\n\
             -2 3 0\n2 -3 0\n\
             -3 4 0\n3 -4 0\n\
             -4 -11 5 0\n-4 11 -5 0\n4 -12 5 0\n4 12 -5 0\n\
             -6 7 0\n6 -7 0\n\
             -7 8 0\n7 -8 0\n\
             -8 -9 0\n8 9 0\n\
             -9 -13 10 0\n-9 13 -10 0\n9 -14 10 0\n9 14 -10 0\n\
             10 0\n",
        )
        .expect("valid DIMACS")
    }

    #[test]
    fn fig1_example_classification_matches_paper() {
        let cnf = fig1_cnf();
        let result = transform(&cnf).expect("transform");
        // Primary inputs per the paper: x1, x11, x12 (unconstrained side) and
        // x6, x13, x14 (constrained side).
        let pis: Vec<u32> = result.primary_inputs().iter().map(|v| v.index()).collect();
        for expected in [1u32, 11, 12, 6, 13, 14] {
            assert!(
                pis.contains(&expected),
                "x{expected} should be a PI, got {pis:?}"
            );
        }
        // x10 is the constrained primary output.
        assert_eq!(result.class_of(Var::new(10)), VarClass::PrimaryOutput);
        // x2..x5 and x7..x9 are intermediate.
        for v in [2u32, 3, 4, 5, 7, 8, 9] {
            assert_eq!(
                result.class_of(Var::new(v)),
                VarClass::Intermediate,
                "x{v} should be intermediate"
            );
        }
        // Exactly one constrained output (x10 = 1).
        assert_eq!(result.netlist.outputs().len(), 1);
        assert!(result.netlist.outputs()[0].target);
    }

    #[test]
    fn fig1_transformation_is_equisatisfiable() {
        let cnf = fig1_cnf();
        let result = transform(&cnf).expect("transform");
        // Any PI assignment satisfying the output constraints must satisfy the CNF.
        let pis = result.primary_inputs();
        let n = pis.len();
        assert!(n <= 8, "example has few inputs");
        let mut satisfying = 0usize;
        for mask in 0..(1u32 << n) {
            let value_of = |v: Var| {
                pis.iter()
                    .position(|&p| p == v)
                    .map(|i| (mask >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            let ok = result.netlist.outputs_satisfied(|v| value_of(Var::new(v)));
            let bits = result.assignment_from_inputs(value_of, |_| false);
            if ok {
                satisfying += 1;
                assert!(
                    cnf.is_satisfied_by_bits(&bits),
                    "mask {mask:b} should satisfy CNF"
                );
            } else {
                assert!(!cnf.is_satisfied_by_bits(&bits));
            }
        }
        assert!(satisfying > 0, "constrained outputs must be achievable");
    }

    #[test]
    fn mux_group_from_eq5_is_recognised() {
        // Eq. (5): x5(x4, x107, x108) = (x107 ∧ x4) ∨ (x108 ∧ ¬x4)
        let mut cnf = Cnf::new(108);
        cnf.add_dimacs_clause([-4, -107, 5]);
        cnf.add_dimacs_clause([-4, 107, -5]);
        cnf.add_dimacs_clause([4, -108, 5]);
        cnf.add_dimacs_clause([4, 108, -5]);
        let result = transform(&cnf).expect("transform");
        assert_eq!(result.class_of(Var::new(5)), VarClass::Intermediate);
        assert_eq!(result.class_of(Var::new(4)), VarClass::PrimaryInput);
        assert_eq!(result.class_of(Var::new(107)), VarClass::PrimaryInput);
        assert_eq!(result.class_of(Var::new(108)), VarClass::PrimaryInput);
        assert_eq!(result.stats.gate_groups, 1);
        // The recognised expression must implement the MUX.
        for mask in 0..8u32 {
            let x4 = mask & 1 == 1;
            let x107 = mask >> 1 & 1 == 1;
            let x108 = mask >> 2 & 1 == 1;
            let value_of = |v: Var| match v.index() {
                4 => x4,
                107 => x107,
                108 => x108,
                _ => false,
            };
            let bits = result.assignment_from_inputs(value_of, |_| false);
            let expected_x5 = if x4 { x107 } else { x108 };
            assert_eq!(bits[4], expected_x5, "x5 value for mask {mask:03b}");
            assert!(cnf.is_satisfied_by_bits(&bits));
        }
    }

    #[test]
    fn under_specified_or_clause_becomes_aux_constraint() {
        // A lone clause (x1 ∨ x2) with no output variable.
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        let result = transform(&cnf).expect("transform");
        assert_eq!(
            result.stats.aux_constraints + result.stats.constant_outputs,
            1
        );
        assert_eq!(result.netlist.outputs().len(), 1);
        // Satisfying the aux output ⇔ satisfying the clause.
        for mask in 0..4u32 {
            let value_of = |v: Var| (mask >> (v.index() - 1)) & 1 == 1;
            let ok = result.netlist.outputs_satisfied(|v| value_of(Var::new(v)));
            let bits = result.assignment_from_inputs(value_of, |_| false);
            assert_eq!(ok, cnf.is_satisfied_by_bits(&bits));
        }
    }

    #[test]
    fn unit_clause_yields_constant_output() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        let result = transform(&cnf).expect("transform");
        assert_eq!(result.class_of(Var::new(1)), VarClass::PrimaryOutput);
        assert_eq!(result.netlist.outputs().len(), 1);
        let bits = result.assignment_from_inputs(|_| true, |_| false);
        assert!(cnf.is_satisfied_by_bits(&bits) || !result.netlist.outputs_satisfied(|_| true));
    }

    #[test]
    fn contradictory_units_reported() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        assert_eq!(
            transform(&cnf).err(),
            Some(TransformError::ConstantConflict)
        );
    }

    #[test]
    fn empty_clause_is_trivially_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.push_clause(Clause::new());
        assert_eq!(transform(&cnf).err(), Some(TransformError::TriviallyUnsat));
    }

    #[test]
    fn ops_reduction_is_positive_on_gate_structured_cnf() {
        let cnf = fig1_cnf();
        let result = transform(&cnf).expect("transform");
        assert!(result.stats.cnf_ops > 0);
        assert!(result.stats.circuit_ops > 0);
        assert!(
            result.stats.ops_reduction() > 1.0,
            "expected reduction, got {}",
            result.stats.ops_reduction()
        );
    }

    #[test]
    fn disabling_simplify_and_signatures_still_equisatisfiable() {
        let cnf = fig1_cnf();
        let config = TransformConfig {
            simplify: false,
            use_signatures: false,
            ..TransformConfig::default()
        };
        let result = transform_with_config(&cnf, &config).expect("transform");
        assert_eq!(result.stats.signature_hits, 0);
        // Spot-check equisatisfiability on a few assignments.
        let pis = result.primary_inputs();
        for mask in [0u32, 1, 7, 13, 21, 37, 63] {
            let value_of = |v: Var| {
                pis.iter()
                    .position(|&p| p == v)
                    .map(|i| (mask >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            let ok = result.netlist.outputs_satisfied(|v| value_of(Var::new(v)));
            let bits = result.assignment_from_inputs(value_of, |_| false);
            assert_eq!(ok, cnf.is_satisfied_by_bits(&bits), "mask {mask}");
        }
    }

    #[test]
    fn unused_variables_are_classified_unused() {
        let mut cnf = Cnf::new(5);
        cnf.add_dimacs_clause([1, 2]);
        let result = transform(&cnf).expect("transform");
        assert_eq!(result.class_of(Var::new(5)), VarClass::Unused);
    }

    #[test]
    fn stats_record_sizes_and_time() {
        let cnf = fig1_cnf();
        let result = transform(&cnf).expect("transform");
        assert_eq!(result.stats.cnf_vars, 14);
        assert_eq!(result.stats.cnf_clauses, 21);
        assert!(result.stats.gate_groups >= 5);
    }
}
