//! # htsat-core
//!
//! The primary contribution of *High-Throughput SAT Sampling* (DATE 2025):
//! a CNF-to-circuit transformation paired with gradient-based, batch-parallel
//! sampling of satisfying assignments.
//!
//! The pipeline has three stages, each exposed as a module:
//!
//! 1. [`mod@transform`] — Algorithm 1 of the paper: the flat CNF is rewritten
//!    into an equisatisfiable multi-level, multi-output Boolean function
//!    ([`htsat_logic::Netlist`]). Sub-clause groups are recognised as the
//!    Tseitin encoding of a Boolean sub-expression by deriving the candidate
//!    output's on-set and off-set expressions and checking that they are
//!    complementary; variables are classified as primary inputs, intermediate
//!    variables and primary outputs.
//! 2. [`compile`] — the netlist is lowered to a differentiable
//!    [`htsat_tensor::SoftCircuit`] in which every gate follows the
//!    probabilistic semantics of the paper's Table I.
//! 3. [`sampler`] — a batch of input logits is pushed through a sigmoid
//!    embedding, the ℓ2 loss against the constrained outputs is minimised
//!    with gradient descent (learning rate 10, five iterations by default),
//!    hardened assignments are validated against the *original* CNF and the
//!    unique valid ones are served as samples — lazily through
//!    [`GdSampler::stream`] (an `Iterator` with cancellation and deadlines,
//!    built on [`htsat_runtime::SampleStream`]) or collected by the blocking
//!    [`GdSampler::sample`] wrapper.
//!
//! The crate additionally defines the workspace-wide [`mod@engine`]
//! abstraction ([`SampleEngine`]: *prepare once → mint cheap per-request
//! sessions → stream solutions*) that this sampler and every baseline
//! implement, so servers and benchmarks drive heterogeneous samplers
//! through one contract; [`PreparedFormula`] is the `"gd"` engine.
//!
//! # Example
//!
//! ```
//! use htsat_cnf::Cnf;
//! use htsat_core::{GdSampler, SamplerConfig};
//!
//! // x3 = x1 AND x2, constrained to 1 (so x1 = x2 = 1, x3 = 1).
//! let mut cnf = Cnf::new(3);
//! cnf.add_dimacs_clause([-1, -2, 3]);
//! cnf.add_dimacs_clause([1, -3]);
//! cnf.add_dimacs_clause([2, -3]);
//! cnf.add_dimacs_clause([3]);
//!
//! let mut sampler = GdSampler::new(&cnf, SamplerConfig::default())?;
//! let report = sampler.sample(1, std::time::Duration::from_secs(5));
//! assert!(!report.solutions.is_empty());
//! for solution in &report.solutions {
//!     assert!(cnf.is_satisfied_by_bits(solution));
//! }
//! # Ok::<(), htsat_core::TransformError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod diversity;
pub mod engine;
mod error;
pub mod sampler;
pub mod signature;
pub mod transform;

pub use engine::{BoxedSession, EngineStream, SampleEngine, SessionConfig};
pub use error::TransformError;
pub use htsat_runtime::{SampleStream, StopToken, StreamStats};
pub use sampler::{GdSampler, KernelChoice, PreparedFormula, SampleReport, SamplerConfig};
pub use transform::{transform, TransformConfig, TransformResult, TransformStats, VarClass};
