//! The workspace-wide sampling-engine abstraction.
//!
//! The paper's headline claim is a *comparison*: the transformed-circuit GD
//! sampler against UniGen-, CMSGen-, QuickSampler- and DiffSampler-style
//! baselines. This module defines the one contract every one of those
//! samplers is served, benchmarked and tested through:
//!
//! > **prepare once → mint cheap per-request sessions → stream solutions.**
//!
//! * **Prepare once** — a [`SampleEngine`] is a formula-specific artifact:
//!   whatever is expensive and request-independent (the CNF-to-circuit
//!   transformation and kernel compilation for the GD sampler, the soft-CNF
//!   circuit for a DiffSampler-style engine, just the formula for the
//!   solver-backed baselines) is built exactly once and shared.
//! * **Mint sessions** — [`SampleEngine::session`] turns a per-request
//!   [`SessionConfig`] (seed, backend, batch override) into a cheap
//!   [`BoxedSession`]: a round-based producer of valid solutions that owns
//!   all mutable state (RNGs, solvers, logit matrices) for that request.
//! * **Stream** — sessions plug into the runtime's
//!   [`SampleStream`], which supplies incremental deduplication, deadlines,
//!   stale-round exhaustion, [`StopToken`](htsat_runtime::StopToken)
//!   cancellation and per-stream [`StreamStats`](htsat_runtime::StreamStats)
//!   uniformly — no engine re-implements any of it.
//!
//! Determinism is part of the contract: for a fixed [`SessionConfig::seed`],
//! an engine's solution *sequence* must be identical at any thread count and
//! on every mint (sessions share no mutable state). That is what lets a
//! serving daemon cache one prepared engine per (formula, engine) pair and
//! answer `SAMPLE` requests bit-for-bit reproducibly.

use crate::sampler::SampleReport;
use crate::TransformError;
use htsat_cnf::Cnf;
use htsat_runtime::{RoundSource, SampleStream};
use htsat_tensor::{Backend, MemoryModel};
use std::time::Duration;

/// A per-request sampling session: a boxed round source over solution
/// bit-vectors. Sessions must emit only *valid* solutions of the engine's
/// CNF; deduplication is the stream's job.
pub type BoxedSession = Box<dyn RoundSource<Item = Vec<bool>> + Send>;

/// The stream type minted by [`SampleEngine::stream`].
pub type EngineStream = SampleStream<BoxedSession>;

/// Per-request run-time configuration of an engine session.
///
/// Everything request-independent lives in the engine itself (it was fixed
/// at prepare time); everything here may vary per request without touching
/// the prepared artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionConfig {
    /// Seed of the session's randomness. The same seed reproduces the same
    /// solution sequence — at any thread count, on any mint of the engine.
    pub seed: u64,
    /// Execution backend for engines with a data-parallel batch dimension
    /// (the GD and DiffSampler-style engines). Solver-backed engines ignore
    /// it, which keeps them trivially thread-count deterministic.
    pub backend: Backend,
    /// Batch-size override for batched engines (`None` = engine default).
    pub batch: Option<usize>,
}

impl SessionConfig {
    /// A config with the given seed and every other knob at its default.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        SessionConfig {
            seed,
            ..SessionConfig::default()
        }
    }
}

/// A prepared, formula-specific sampling engine.
///
/// Implementations are immutable request-independent artifacts: `&self`
/// methods only, `Send + Sync`, shareable behind an `Arc` by a server. All
/// per-request mutability lives in the sessions an engine mints.
pub trait SampleEngine: Send + Sync {
    /// Stable engine identifier — the wire/registry name (`"gd"`,
    /// `"walksat"`, `"unigen"`, …).
    fn name(&self) -> &'static str;

    /// The CNF this engine was prepared for. Sessions emit assignments over
    /// exactly this variable universe.
    fn cnf(&self) -> &Cnf;

    /// Mints a per-request session.
    ///
    /// Minting must be cheap relative to preparation (no recompilation, no
    /// transformation) and must not observe other sessions: two sessions
    /// minted with the same config produce identical solution sequences.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidConfig`] for run-time configurations
    /// the engine cannot honour (e.g. a zero batch override).
    fn session(&self, config: &SessionConfig) -> Result<BoxedSession, TransformError>;

    /// Modelled resident bytes of one sampling run at `batch` rows over
    /// `workers` pool workers — the quantity a serving registry budgets by.
    ///
    /// The default models the formula itself (solver-backed engines hold
    /// little beyond the CNF); engines with compiled artifacts override it.
    fn memory_model(&self, batch: usize, workers: usize) -> MemoryModel {
        MemoryModel::new(self.cnf().num_vars(), self.cnf().num_clauses(), batch)
            .with_workers(workers)
    }

    /// Structural sizes of the prepared artifacts as stable `(name, value)`
    /// pairs for status reporting (empty when the engine has no compiled
    /// artifacts worth reporting).
    fn artifact_dims(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    /// Mints a session and wraps it in a [`SampleStream`]: a lazy iterator
    /// of unique solutions with deduplication, deadline, stale-limit and
    /// cancellation support via the stream's builder methods.
    ///
    /// # Errors
    ///
    /// Propagates [`SampleEngine::session`] errors.
    fn stream(&self, config: &SessionConfig) -> Result<EngineStream, TransformError> {
        let session = self.session(config)?;
        // Session minting is the engine-session entry point: count it both
        // in total and per engine. Round/sample/dedup totals are recorded by
        // the stream itself when it drops (`engine.*` counters).
        htsat_obs::counter!("engine.sessions").inc();
        htsat_obs::global()
            .counter(&format!("engine.sessions.{}", self.name()))
            .inc();
        Ok(SampleStream::new(session))
    }

    /// The blocking convenience wrapper over [`SampleEngine::stream`]:
    /// samples until `min_solutions` unique solutions are collected, the
    /// timeout elapses, or the stream exhausts — whichever comes first.
    /// Unique solutions the final round discovered beyond the target are
    /// included (they were already paid for).
    ///
    /// # Errors
    ///
    /// Propagates [`SampleEngine::session`] errors.
    fn sample(
        &self,
        config: &SessionConfig,
        min_solutions: usize,
        timeout: Duration,
    ) -> Result<SampleReport, TransformError> {
        let mut stream = self.stream(config)?.with_timeout(timeout);
        let mut solutions: Vec<Vec<bool>> = stream.by_ref().take(min_solutions).collect();
        solutions.append(&mut stream.drain_ready());
        let stats = *stream.stats();
        Ok(SampleReport {
            solutions,
            attempts: stats.attempts,
            valid: stats.valid,
            rounds: stats.rounds,
            elapsed: stream.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::PreparedFormula;
    use crate::transform::TransformConfig;
    use htsat_cnf::dimacs;

    fn cnf() -> Cnf {
        dimacs::parse_str("p cnf 4 3\n1 2 0\n-2 3 0\n3 4 0\n").expect("valid DIMACS")
    }

    fn engine() -> PreparedFormula {
        PreparedFormula::prepare(&cnf(), &TransformConfig::default()).expect("prepare")
    }

    #[test]
    fn engine_streams_valid_unique_solutions() {
        let engine = engine();
        let config = SessionConfig::with_seed(3);
        let solutions: Vec<Vec<bool>> = engine.stream(&config).expect("stream").take(4).collect();
        assert_eq!(solutions.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for s in &solutions {
            assert!(engine.cnf().is_satisfied_by_bits(s));
            assert!(seen.insert(s.clone()), "duplicate across the stream");
        }
    }

    #[test]
    fn sessions_are_independent_and_deterministic() {
        let engine = engine();
        let config = SessionConfig::with_seed(11);
        let take = |config: &SessionConfig| -> Vec<Vec<bool>> {
            engine.stream(config).expect("stream").take(5).collect()
        };
        // Two mints with the same config: identical sequences (no shared
        // mutable state), and a different seed diverges.
        assert_eq!(take(&config), take(&config));
        assert_ne!(take(&config), take(&SessionConfig::with_seed(12)));
    }

    #[test]
    fn blocking_sample_collects_the_stream() {
        let engine = engine();
        let report = engine
            .sample(
                &SessionConfig::default(),
                3,
                std::time::Duration::from_secs(5),
            )
            .expect("sample");
        assert!(report.solutions.len() >= 3);
        assert!(report.rounds > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn session_batch_override_is_honoured() {
        let engine = engine();
        // A zero batch override must be rejected, not panic downstream.
        let zero = SessionConfig {
            batch: Some(0),
            ..SessionConfig::default()
        };
        assert!(engine.session(&zero).is_err());
        let small = SessionConfig {
            batch: Some(8),
            ..SessionConfig::default()
        };
        assert!(engine.session(&small).is_ok());
    }

    #[test]
    fn memory_model_reflects_batch_and_workers() {
        let engine = engine();
        let small = SampleEngine::memory_model(&engine, 64, 1).total_bytes();
        let large = SampleEngine::memory_model(&engine, 4096, 8).total_bytes();
        assert!(large > small);
    }

    #[test]
    fn artifact_dims_report_the_compiled_circuit() {
        let engine = engine();
        let dims = engine.artifact_dims();
        assert!(dims.iter().any(|&(name, v)| name == "inputs" && v > 0));
        assert!(dims.iter().any(|&(name, v)| name == "nodes" && v > 0));
    }
}
