//! Streaming-sampler integration tests: thread-count determinism and
//! cancellation.
//!
//! The contract under test is the headline property of the runtime
//! subsystem: for a fixed seed the sampler emits the *identical* solution
//! sequence at any worker-thread count (per-row RNG streams +
//! order-preserving executors), and a stream stops promptly when its stop
//! token fires.

use htsat_cnf::{dimacs, Cnf};
use htsat_core::{GdSampler, SampleStream, SamplerConfig, StopToken};
use htsat_tensor::Backend;
use std::time::{Duration, Instant};

/// A loosely constrained formula with plenty of distinct solutions.
fn roomy_cnf() -> Cnf {
    dimacs::parse_str(
        "p cnf 8 4\n\
         1 2 3 0\n\
         -3 4 5 0\n\
         6 7 8 0\n\
         -1 -6 2 0\n",
    )
    .expect("valid DIMACS")
}

fn config_with(backend: Backend) -> SamplerConfig {
    SamplerConfig {
        batch_size: 64,
        backend,
        seed: 7,
        ..SamplerConfig::default()
    }
}

fn first_solutions(backend: Backend, take: usize) -> Vec<Vec<bool>> {
    let cnf = roomy_cnf();
    let mut sampler = GdSampler::new(&cnf, config_with(backend)).expect("build");
    sampler
        .stream()
        .with_timeout(Duration::from_secs(30))
        .take(take)
        .collect()
}

#[test]
fn determinism_same_seed_same_solutions_at_thread_counts_1_2_8() {
    let reference = first_solutions(Backend::Threads(1), 24);
    assert_eq!(reference.len(), 24, "reference run found too few solutions");
    for threads in [2usize, 8] {
        let solutions = first_solutions(Backend::Threads(threads), 24);
        // Not just the same *set*: the same sequence, because rounds emit
        // rows in index order regardless of scheduling.
        assert_eq!(
            solutions, reference,
            "thread count {threads} changed the sampled solutions"
        );
    }
}

#[test]
fn determinism_sequential_backend_matches_the_pool() {
    let reference = first_solutions(Backend::Threads(4), 16);
    assert_eq!(first_solutions(Backend::Sequential, 16), reference);
}

#[test]
fn blocking_sample_is_a_wrapper_over_the_same_stream() {
    let cnf = roomy_cnf();
    let streamed = first_solutions(Backend::Threads(2), 12);
    let mut sampler = GdSampler::new(&cnf, config_with(Backend::Threads(2))).expect("build");
    let report = sampler.sample(12, Duration::from_secs(30));
    assert!(report.solutions.len() >= 12);
    assert_eq!(report.solutions[..12], streamed[..]);
    for s in &report.solutions {
        assert!(cnf.is_satisfied_by_bits(s));
    }
}

#[test]
fn stream_dedups_across_calls_like_sample() {
    let cnf = roomy_cnf();
    let mut sampler = GdSampler::new(&cnf, config_with(Backend::Threads(2))).expect("build");
    let first: Vec<Vec<bool>> = sampler.stream().take(8).collect();
    let second: Vec<Vec<bool>> = sampler.stream().take(8).collect();
    for s in &second {
        assert!(
            !first.contains(s),
            "stream repeated a solution across calls"
        );
    }
}

#[test]
fn cancellation_stops_the_stream_promptly() {
    let cnf = roomy_cnf();
    // A large batch so a round is non-trivial work.
    let config = SamplerConfig {
        batch_size: 4096,
        backend: Backend::Threads(2),
        seed: 11,
        ..SamplerConfig::default()
    };
    let mut sampler = GdSampler::new(&cnf, config).expect("build");
    let mut stream = sampler.stream();
    let token: StopToken = stream.stop_token();
    assert!(stream.next().is_some(), "stream should produce solutions");
    token.stop();
    let stopped_at = Instant::now();
    assert_eq!(stream.next(), None, "stream must end once the token is set");
    assert!(
        stopped_at.elapsed() < Duration::from_millis(100),
        "cancelled next() took {:?}",
        stopped_at.elapsed()
    );
}

#[test]
fn cancellation_from_another_thread_interrupts_a_running_stream() {
    let cnf = roomy_cnf();
    let config = SamplerConfig {
        batch_size: 1024,
        backend: Backend::Threads(2),
        seed: 3,
        ..SamplerConfig::default()
    };
    let sampler = GdSampler::new(&cnf, config).expect("build");
    // An owning stream with no deadline and no stale limit would run forever
    // on this roomy formula; the only way out is the token.
    let mut stream = sampler.into_stream().with_stale_limit(0);
    let token = stream.stop_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.stop();
    });
    let started = Instant::now();
    let drained: usize = stream.by_ref().count();
    canceller.join().expect("canceller thread");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "stream did not stop after cancellation (drained {drained} items in {:?})",
        started.elapsed()
    );
}

#[test]
fn deadline_bounds_the_stream() {
    let cnf = roomy_cnf();
    let mut sampler = GdSampler::new(&cnf, config_with(Backend::Threads(2))).expect("build");
    let started = Instant::now();
    let _: Vec<Vec<bool>> = SampleStream::new(&mut sampler)
        .with_timeout(Duration::from_millis(200))
        .with_stale_limit(0)
        .collect();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline ignored: ran {:?}",
        started.elapsed()
    );
}

#[test]
fn solutions_from_the_stream_are_valid_and_unique() {
    let cnf = roomy_cnf();
    let mut sampler = GdSampler::new(&cnf, config_with(Backend::Threads(8))).expect("build");
    let solutions: Vec<Vec<bool>> = sampler
        .stream()
        .with_timeout(Duration::from_secs(30))
        .take(32)
        .collect();
    let unique: std::collections::HashSet<&Vec<bool>> = solutions.iter().collect();
    assert_eq!(unique.len(), solutions.len());
    for s in &solutions {
        assert!(cnf.is_satisfied_by_bits(s));
    }
}
