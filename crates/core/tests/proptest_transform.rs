//! Property-based tests of the CNF-to-circuit transformation: on randomly
//! generated Tseitin-encoded circuits, the transformation must preserve
//! equisatisfiability and the sampler must only emit valid solutions.

use htsat_cnf::{Cnf, Var};
use htsat_core::{transform, GdSampler, SamplerConfig};
use proptest::prelude::*;
use std::time::Duration;

/// A tiny random circuit description: a list of gates over earlier signals.
#[derive(Debug, Clone)]
enum GateSpec {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
}

/// Builds a Tseitin CNF from a gate list over `num_inputs` inputs, with the
/// last signal constrained to `target`. Returns the CNF and a simulation
/// closure for reference evaluation.
fn encode(
    num_inputs: usize,
    gates: &[GateSpec],
    target: bool,
) -> (Cnf, impl Fn(&[bool]) -> Vec<bool> + '_) {
    let mut cnf = Cnf::new(num_inputs);
    let mut signal_vars: Vec<i64> = (1..=num_inputs as i64).collect();
    for gate in gates {
        let out = cnf.fresh_var().index() as i64;
        match gate {
            GateSpec::Not(a) => {
                let a = signal_vars[*a];
                cnf.add_dimacs_clause([out, a]);
                cnf.add_dimacs_clause([-out, -a]);
            }
            GateSpec::And(a, b) => {
                let (a, b) = (signal_vars[*a], signal_vars[*b]);
                cnf.add_dimacs_clause([out, -a, -b]);
                cnf.add_dimacs_clause([-out, a]);
                cnf.add_dimacs_clause([-out, b]);
            }
            GateSpec::Or(a, b) => {
                let (a, b) = (signal_vars[*a], signal_vars[*b]);
                cnf.add_dimacs_clause([-out, a, b]);
                cnf.add_dimacs_clause([out, -a]);
                cnf.add_dimacs_clause([out, -b]);
            }
            GateSpec::Xor(a, b) => {
                let (a, b) = (signal_vars[*a], signal_vars[*b]);
                cnf.add_dimacs_clause([-out, a, b]);
                cnf.add_dimacs_clause([-out, -a, -b]);
                cnf.add_dimacs_clause([out, -a, b]);
                cnf.add_dimacs_clause([out, a, -b]);
            }
        }
        signal_vars.push(out);
    }
    let last = *signal_vars.last().expect("at least the inputs exist");
    if !gates.is_empty() {
        cnf.add_dimacs_clause([if target { last } else { -last }]);
    }
    let simulate = move |inputs: &[bool]| -> Vec<bool> {
        let mut values: Vec<bool> = inputs.to_vec();
        for gate in gates {
            let v = match gate {
                GateSpec::Not(a) => !values[*a],
                GateSpec::And(a, b) => values[*a] && values[*b],
                GateSpec::Or(a, b) => values[*a] || values[*b],
                GateSpec::Xor(a, b) => values[*a] ^ values[*b],
            };
            values.push(v);
        }
        values
    };
    (cnf, simulate)
}

fn arb_gates(num_inputs: usize, max_gates: usize) -> impl Strategy<Value = Vec<GateSpec>> {
    prop::collection::vec(any::<(u8, u16, u16)>(), 1..=max_gates).prop_map(move |raw| {
        let mut gates = Vec::new();
        for (kind, a, b) in raw {
            let available = num_inputs + gates.len();
            let a = a as usize % available;
            let b = b as usize % available;
            gates.push(match kind % 4 {
                0 => GateSpec::Not(a),
                1 => GateSpec::And(a, b),
                2 => GateSpec::Or(a, b),
                _ => GateSpec::Xor(a, b),
            });
        }
        gates
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every input assignment, the circuit simulation extends to a model
    /// of the Tseitin CNF iff the constrained output matches — and the
    /// transformed netlist agrees with the CNF on that assignment.
    #[test]
    fn transformation_is_equisatisfiable_on_random_circuits(
        gates in arb_gates(4, 6),
        target in any::<bool>(),
    ) {
        let num_inputs = 4usize;
        let (cnf, simulate) = encode(num_inputs, &gates, target);
        let result = match transform(&cnf) {
            Ok(r) => r,
            Err(_) => {
                // The constrained output may be structurally impossible
                // (e.g. forced constant conflicting with `target`); that is a
                // legitimate UNSAT verdict, checked against simulation below.
                for mask in 0..(1u32 << num_inputs) {
                    let inputs: Vec<bool> = (0..num_inputs).map(|i| (mask >> i) & 1 == 1).collect();
                    let values = simulate(&inputs);
                    prop_assert_ne!(*values.last().expect("non-empty"), target);
                }
                return Ok(());
            }
        };
        let pis = result.primary_inputs();
        prop_assume!(pis.len() <= 12);
        for mask in 0..(1u32 << pis.len()) {
            let value_of = |v: Var| {
                pis.iter()
                    .position(|&p| p == v)
                    .map(|i| (mask >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            let circuit_ok = result.netlist.outputs_satisfied(|v| value_of(Var::new(v)));
            let bits = result.assignment_from_inputs(value_of, |_| false);
            prop_assert_eq!(
                circuit_ok,
                cnf.is_satisfied_by_bits(&bits),
                "mask {} disagrees", mask
            );
        }
    }

    /// The sampler never returns an invalid or duplicate assignment, on any
    /// random circuit instance.
    #[test]
    fn sampler_solutions_are_always_valid_and_unique(
        gates in arb_gates(5, 5),
        target in any::<bool>(),
    ) {
        let (cnf, _) = encode(5, &gates, target);
        let config = SamplerConfig {
            batch_size: 32,
            ..SamplerConfig::default()
        };
        if let Ok(mut sampler) = GdSampler::new(&cnf, config) {
            let report = sampler.sample(16, Duration::from_millis(500));
            let mut seen = std::collections::HashSet::new();
            for s in &report.solutions {
                prop_assert!(cnf.is_satisfied_by_bits(s));
                prop_assert!(seen.insert(s.clone()));
            }
        }
    }

    /// The ops count of the transformed circuit never exceeds the CNF's op
    /// count on Tseitin-encoded circuits (the transformation undoes the
    /// encoding blow-up).
    #[test]
    fn ops_never_increase_on_tseitin_cnfs(gates in arb_gates(4, 8)) {
        let (cnf, _) = encode(4, &gates, true);
        if let Ok(result) = transform(&cnf) {
            prop_assert!(
                result.stats.circuit_ops <= result.stats.cnf_ops,
                "circuit {} vs cnf {}",
                result.stats.circuit_ops,
                result.stats.cnf_ops
            );
        }
    }
}
