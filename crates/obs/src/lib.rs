//! # htsat-obs
//!
//! Std-only observability for the htsat stack: metrics, spans, and a tiny
//! leveled logger. Sits **below** `htsat-runtime`, `htsat-core`, and
//! `htsat-serve` in the dependency order and depends only on std plus the
//! hand-rolled `htsat-json` codec, so any layer can instrument itself
//! without new dependencies.
//!
//! Three pieces:
//!
//! * **Metrics** — a process-wide [`Registry`] of lock-free [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s, registered by
//!   name through the [`counter!`], [`gauge!`], and [`histogram!`] macros.
//!   Updates are single relaxed atomics; [`Registry::snapshot`] produces a
//!   deterministic, schema-versioned JSON [`Snapshot`] the daemon serves
//!   over the `STATS` verb.
//! * **Spans** — [`span!`]`("name")` returns a guard that records the
//!   scope's wall-time into a histogram on drop, with optional per-span
//!   event counters. Zero heap allocations after a call site's first
//!   execution (proven by the `alloc_free` counting-allocator test), so it
//!   is safe inside the sampler round loop.
//! * **Logging** — [`error!`] / [`warn!`] / [`info!`] / [`debug!`] macros
//!   behind an `HTSAT_LOG` environment filter, writing timestamped lines to
//!   stderr with one locked write per record.
//! * **Tracing** — the [`trace`] module keeps per-request span *timelines*
//!   (name, parent, start offset, duration) in a pre-allocated lock-free
//!   ring. A thread with a current trace installed ([`trace::install`])
//!   binds every [`span!`] guard to that request; the daemon serves the
//!   retained timelines over the `TRACE` verb as a schema-versioned
//!   (`htsat-trace-v1`) JSON document.
//!
//! Metrics are **observer-only** by contract: nothing in this crate feeds
//! back into sampling behavior, so instrumented and uninstrumented runs
//! produce bit-identical streams (the serve e2e determinism gates run with
//! instrumentation enabled).
//!
//! # Example
//!
//! ```
//! use htsat_obs as obs;
//!
//! {
//!     let span = obs::span!("demo.round");
//!     obs::counter!("demo.samples").add(8);
//!     span.event();
//! }
//! let snapshot = obs::global().snapshot();
//! assert!(snapshot.counter("demo.samples").unwrap() >= 8);
//! let text = snapshot.to_json().encode();
//! assert!(text.starts_with("{\"schema\":\"htsat-stats-v1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod logging;
mod metrics;
mod snapshot;
mod span;
mod time;
pub mod trace;

pub use logging::{log_enabled, max_level, set_max_level, write_log, Level};
pub use metrics::{global, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramSnapshot, Snapshot, SNAPSHOT_SCHEMA};
pub use span::{SpanGuard, SpanMeter};
pub use time::{measure, Stopwatch};
pub use trace::{TraceId, TraceReport, TRACE_SCHEMA};
