//! Timing helpers — the single timing substrate of the workspace.
//!
//! The bench harness separates *warmup* from *timed* phases and measures
//! each invocation with a monotonic stopwatch. These helpers centralize the
//! two idioms every measurement site in the workspace repeats — "time this
//! closure" and "take successive laps" — so harness code never touches
//! `Instant` arithmetic directly. The span API ([`crate::SpanGuard`]) is
//! built on the same [`Stopwatch`], so bench timing and live telemetry read
//! the clock identically.

use std::time::{Duration, Instant};

/// A monotonic stopwatch over [`Instant`].
///
/// `Stopwatch` cannot be paused — it models wall-clock measurement windows,
/// not CPU accounting. [`Stopwatch::lap`] returns the time since the last
/// lap (or start) and advances the lap marker, so successive phases of one
/// run can be attributed without re-reading the clock twice per boundary.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Instant,
    last_lap: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    #[must_use]
    pub fn start() -> Self {
        let now = Instant::now();
        Stopwatch {
            started: now,
            last_lap: now,
        }
    }

    /// Total time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time since the previous lap (or since start for the first lap), and
    /// advances the lap marker.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now.duration_since(self.last_lap);
        self.last_lap = now;
        lap
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Runs a closure and returns its result together with the wall-clock time
/// it took.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let value = f();
    (value, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_nonzero_duration() {
        let (value, took) = measure(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(value, 42);
        assert!(took >= Duration::from_millis(2));
    }

    #[test]
    fn laps_partition_the_total() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let a = sw.lap();
        std::thread::sleep(Duration::from_millis(1));
        let b = sw.lap();
        assert!(a >= Duration::from_millis(1));
        assert!(b >= Duration::from_millis(1));
        assert!(sw.elapsed() >= a + b);
    }
}
