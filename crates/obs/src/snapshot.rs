//! Point-in-time metric snapshots and their schema-versioned JSON form.
//!
//! A [`Snapshot`] is what travels over the wire for the `STATS` verb and
//! what the periodic `--log-stats` line emits. The encoding is
//! deterministic: sections appear in a fixed order, metrics are sorted by
//! name (the registry hands them over from ordered maps), and histogram
//! buckets are emitted sparsely as ascending `[index, count]` pairs. The
//! top-level `schema` field freezes the layout; parsers reject snapshots
//! from a different schema generation instead of misreading them.

use htsat_json::Json;

use crate::metrics::Histogram;

/// Schema tag carried by every encoded snapshot.
pub const SNAPSHOT_SCHEMA: &str = "htsat-stats-v1";

/// The state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds for span histograms).
    pub sum: u64,
    /// Sparse non-empty buckets as ascending `(bucket_index, count)` pairs;
    /// bucket `i` covers values in `[2^i, 2^(i+1))`.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// An upper bound for the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// values: the exclusive upper edge of the bucket in which the
    /// cumulative count crosses `q * count`. Zero when empty.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_bounds(index).1;
            }
        }
        self.buckets
            .last()
            .map_or(0, |&(index, _)| Histogram::bucket_bounds(index).1)
    }

    /// Mean of the recorded values (exact, from `sum / count`). Zero when
    /// empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(index, n)| {
                            Json::Arr(vec![Json::Num(index as f64), Json::Num(n as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<HistogramSnapshot, String> {
        let count = value
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("histogram missing count")?;
        let sum = value
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or("histogram missing sum")?;
        let mut buckets = Vec::new();
        for pair in value
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing buckets")?
        {
            let pair = pair.as_arr().ok_or("histogram bucket must be a pair")?;
            if pair.len() != 2 {
                return Err("histogram bucket must be [index, count]".into());
            }
            let index = pair[0].as_u64().ok_or("bucket index must be integral")? as usize;
            if index >= crate::metrics::HISTOGRAM_BUCKETS {
                return Err(format!("bucket index {index} out of range"));
            }
            let n = pair[1].as_u64().ok_or("bucket count must be integral")?;
            buckets.push((index, n));
        }
        Ok(HistogramSnapshot {
            count,
            sum,
            buckets,
        })
    }
}

/// A deterministic point-in-time view of a [`crate::Registry`].
///
/// Metric vectors are sorted by name. Round-trips through
/// [`Snapshot::to_json`] / [`Snapshot::from_json`] byte-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The value of a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The level of a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The state of a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Encodes the snapshot as schema-v1 JSON (deterministic key order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::from(SNAPSHOT_SCHEMA)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the snapshot in the Prometheus text exposition format, so
    /// the daemon's metrics can be scraped without a bespoke parser.
    ///
    /// Metric names are sanitized (every character outside
    /// `[a-zA-Z0-9_:]` becomes `_`, so `serve.requests.load` scrapes as
    /// `serve_requests_load`). Histograms expose cumulative
    /// `_bucket{le="..."}` series over the power-of-two bucket upper
    /// bounds actually populated, plus the standard `_sum` / `_count`
    /// pair and a closing `le="+Inf"` bucket.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(index, count) in &h.buckets {
                cumulative += count;
                let upper = Histogram::bucket_bounds(index).1;
                let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// Decodes a schema-v1 snapshot, rejecting other schema generations.
    pub fn from_json(value: &Json) -> Result<Snapshot, String> {
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("snapshot missing schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported stats schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let section = |key: &str| -> Result<&Vec<(String, Json)>, String> {
            match value.get(key) {
                Some(Json::Obj(pairs)) => Ok(pairs),
                _ => Err(format!("snapshot missing {key} object")),
            }
        };
        let mut counters = Vec::new();
        for (name, v) in section("counters")? {
            let v = v.as_u64().ok_or_else(|| format!("counter {name} value"))?;
            counters.push((name.clone(), v));
        }
        let mut gauges = Vec::new();
        for (name, v) in section("gauges")? {
            let v = v
                .as_f64()
                .filter(|f| f.fract() == 0.0)
                .map(|f| f as i64)
                .ok_or_else(|| format!("gauge {name} value"))?;
            gauges.push((name.clone(), v));
        }
        let mut histograms = Vec::new();
        for (name, v) in section("histograms")? {
            histograms.push((
                name.clone(),
                HistogramSnapshot::from_json(v).map_err(|e| format!("histogram {name}: {e}"))?,
            ));
        }
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("serve.requests.load").add(3);
        reg.counter("engine.rounds").add(41);
        reg.gauge("serve.connections.active").set(2);
        reg.gauge("serve.resident.gd").set(-1);
        let h = reg.histogram("serve.request");
        h.record(0);
        h.record(17);
        h.record(1 << 20);
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let snap = sample_snapshot();
        let text = snap.to_json().encode();
        let parsed = Json::parse(&text).expect("snapshot must parse");
        let back = Snapshot::from_json(&parsed).expect("snapshot must decode");
        assert_eq!(back, snap);
        assert_eq!(back.to_json().encode(), text, "re-encode must be identical");
    }

    #[test]
    fn sections_are_name_ordered() {
        let snap = sample_snapshot();
        assert_eq!(snap.counters[0].0, "engine.rounds");
        assert_eq!(snap.counters[1].0, "serve.requests.load");
        assert!(snap.gauges.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut json = sample_snapshot().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::from("htsat-stats-v0");
        }
        let err = Snapshot::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported stats schema"), "{err}");
    }

    #[test]
    fn prometheus_text_exposition() {
        let text = sample_snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE serve_requests_load counter\nserve_requests_load 3\n"));
        assert!(
            text.contains("# TYPE serve_connections_active gauge\nserve_connections_active 2\n")
        );
        assert!(text.contains("serve_resident_gd -1\n"), "{text}");
        // The histogram saw 0, 17, 1<<20: buckets 0, 4, 20 — cumulative.
        assert!(text.contains("# TYPE serve_request histogram"), "{text}");
        assert!(
            text.contains("serve_request_bucket{le=\"2\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_request_bucket{le=\"32\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_request_bucket{le=\"2097152\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_request_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains(&format!("serve_request_sum {}\n", 17 + (1u64 << 20))),
            "{text}"
        );
        assert!(text.contains("serve_request_count 3\n"), "{text}");
        // Every line is either a comment or `name value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn lookups_and_quantiles() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("serve.requests.load"), Some(3));
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauge("serve.resident.gd"), Some(-1));
        let h = snap.histogram("serve.request").expect("histogram present");
        assert_eq!(h.count, 3);
        assert_eq!(h.mean(), (17 + (1 << 20)) / 3);
        // p0..p33 land in bucket 0 ([0,2)), the max lands in bucket 20.
        assert_eq!(h.quantile_upper_bound(0.0), 2);
        assert_eq!(h.quantile_upper_bound(1.0), 1 << 21);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
    }
}
