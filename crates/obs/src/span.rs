//! The span API: scope guards that record wall-time into a histogram.
//!
//! `span!("name")` returns a [`SpanGuard`] that starts a [`Stopwatch`] and,
//! on drop, records the elapsed nanoseconds into the histogram registered
//! under `name` (so the histogram's `count` is the number of times the span
//! ran and its `sum` is total time inside it). Each span also owns a
//! companion counter `<name>.events` for cheap per-span event tallies via
//! [`SpanGuard::event`].
//!
//! The guard is two `Instant` reads plus a few relaxed atomic adds — cheap
//! enough for the sampler round loop — and allocates nothing after the
//! call site's first execution registers the metrics.

use std::sync::Arc;

use crate::metrics::{Counter, Histogram, Registry};
use crate::time::Stopwatch;
use crate::trace;

/// The registered metrics behind one `span!` call site: a latency histogram
/// and an event counter. Created once per call site and cached in a static.
#[derive(Debug)]
pub struct SpanMeter {
    hist: Arc<Histogram>,
    events: Arc<Counter>,
    /// Interned name for request-scoped tracing; interning happens here,
    /// at registration, so the guard's hot path stores a plain `u32`.
    trace_name: trace::SpanName,
}

impl SpanMeter {
    /// Registers the histogram `name` and counter `<name>.events` in
    /// `registry`. The [`span!`](crate::span) macro calls this once per
    /// call site against the [`global`](crate::global) registry.
    #[must_use]
    pub fn register(registry: &Registry, name: &'static str) -> SpanMeter {
        SpanMeter {
            hist: registry.histogram(name),
            events: registry.counter(&format!("{name}.events")),
            trace_name: trace::span_name(name),
        }
    }
}

/// An RAII guard timing one span execution; see the module docs.
#[must_use = "a span guard records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    meter: &'a SpanMeter,
    sw: Stopwatch,
    /// When the entering thread has a current trace installed, the claimed
    /// span cell in its timeline (closed on drop).
    traced: Option<trace::TracedSpan>,
}

impl<'a> SpanGuard<'a> {
    /// Starts timing against `meter`. Prefer the [`span!`](crate::span)
    /// macro, which handles registration and caching. If the thread has a
    /// current trace ([`trace::install`]) the span also records into that
    /// request's timeline, nesting under the innermost open span.
    pub fn enter(meter: &'a SpanMeter) -> SpanGuard<'a> {
        SpanGuard {
            meter,
            sw: Stopwatch::start(),
            traced: trace::enter_span(meter.trace_name),
        }
    }

    /// Counts one event against the span's `<name>.events` counter.
    pub fn event(&self) {
        self.meter.events.inc();
    }

    /// Counts `n` events against the span's `<name>.events` counter.
    pub fn events(&self, n: u64) {
        self.meter.events.add(n);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.meter.hist.record_duration(self.sw.elapsed());
        if let Some(traced) = self.traced.take() {
            trace::exit_span(traced);
        }
    }
}

/// Times the enclosing scope into the [`global`](crate::global) histogram
/// `name` (nanoseconds), registering it on first use.
///
/// ```
/// {
///     let span = htsat_obs::span!("example.round");
///     span.events(3); // optional: tally events within the span
///     // ... work ...
/// } // drop records the elapsed time
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<$crate::SpanMeter> = ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter(
            SLOT.get_or_init(|| $crate::SpanMeter::register($crate::global(), $name)),
        )
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn guard_records_duration_and_events() {
        let reg = Registry::new();
        let meter = SpanMeter::register(&reg, "test.span");
        {
            let span = SpanGuard::enter(&meter);
            span.event();
            span.events(2);
            std::thread::sleep(Duration::from_millis(1));
        }
        let h = reg.histogram("test.span");
        assert_eq!(h.count(), 1);
        assert!(
            h.sum() >= 1_000_000,
            "span must record >= 1ms, got {}ns",
            h.sum()
        );
        assert_eq!(reg.counter("test.span.events").get(), 3);
    }

    #[test]
    fn span_macro_registers_globally() {
        {
            let _span = crate::span!("test.span.macro");
        }
        assert!(crate::global().histogram("test.span.macro").count() >= 1);
    }
}
