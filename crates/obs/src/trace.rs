//! Request-scoped tracing: per-request span timelines in a pre-allocated
//! lock-free ring.
//!
//! A *trace* is one request's timeline: the set of spans (name, parent,
//! start offset, duration) that ran on its behalf, possibly across several
//! threads (reader, worker, writer). Traces are identified by a 128-bit
//! [`TraceId`] that the daemon echoes over the wire, so a client (or a
//! future router) can correlate its own clocks with the server's timeline.
//!
//! The substrate is a fixed ring of [`RING_SLOTS`] timeline slots, each
//! with capacity for [`MAX_TIMELINE_SPANS`] span records, **allocated once
//! on first use and never resized**. Every field is an atomic; a seqlock
//! per slot (`seq` odd while recording, even when published) lets readers
//! copy timelines without locks and detect torn reads by re-checking `seq`.
//! The record path — claim a span cell, store four atomics, restore the
//! thread-local parent — performs zero heap allocations, which keeps the
//! PR 7 counting-allocator contract intact with tracing active.
//!
//! Binding spans to a request crosses threads via a **thread-local current
//! trace**: a worker calls [`install`] with the request's [`TraceHandle`],
//! and every [`span!`](crate::span) guard entered on that thread while the
//! scope lives records into the request's timeline (nested guards form the
//! parent chain). Threads that only know an interval — e.g. the writer
//! recording how long a frame waited in its queue — use [`record_span`]
//! directly.
//!
//! Two knobs shape what the ring keeps: [`set_sampling`] traces every k-th
//! request that did not carry an explicit client id, and [`set_slow_only`]
//! discards finished timelines under a duration floor (slow-only mode).
//! Both are observer-only: they never change what the daemon computes.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use htsat_json::Json;

/// Schema tag carried by every encoded trace report.
pub const TRACE_SCHEMA: &str = "htsat-trace-v1";

/// Completed timelines retained by the ring (oldest overwritten first).
pub const RING_SLOTS: usize = 64;

/// Span records per timeline; spans beyond this are counted, not stored.
pub const MAX_TIMELINE_SPANS: usize = 64;

/// Largest integer a JSON `f64` number can carry exactly; larger request
/// ids are encoded as decimal strings (mirrors the wire protocol's rule).
const MAX_EXACT_JSON_INT: u64 = 1 << 53;

/// Sentinel for "no parent" in packed span records.
const NO_PARENT: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// A 128-bit trace identifier, written as 32 lower-case hex characters on
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u128);

impl TraceId {
    /// Wraps a raw 128-bit id.
    #[must_use]
    pub fn from_u128(v: u128) -> TraceId {
        TraceId(v)
    }

    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Mints a fresh process-unique id (wall-clock + per-process counter,
    /// mixed through splitmix64 so ids from concurrent daemons differ).
    #[must_use]
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        let hi = splitmix64(now.as_nanos() as u64 ^ 0x9E37_79B9_7F4A_7C15);
        let lo = splitmix64(tick.wrapping_add(now.subsec_nanos() as u64));
        TraceId(((hi as u128) << 64) | lo as u128)
    }

    /// Canonical wire form: exactly 32 lower-case hex characters.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a hex trace id (1–32 hex chars; clients may send short ids).
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Span-name interning
// ---------------------------------------------------------------------------

/// An interned span name: a small index into a process-wide table of
/// `&'static str` names, so the record path stores a `u32` instead of a
/// pointer. Interning happens once per call site (at span registration);
/// the hot path never touches the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(u32);

fn name_table() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::with_capacity(64)))
}

/// Interns `name` (idempotent). Call once per call site and cache the
/// result — the lookup takes a lock and must stay off the hot path.
#[must_use]
pub fn span_name(name: &'static str) -> SpanName {
    let mut table = name_table().lock().expect("span-name table poisoned");
    if let Some(i) = table.iter().position(|n| *n == name) {
        return SpanName(i as u32);
    }
    table.push(name);
    SpanName((table.len() - 1) as u32)
}

fn name_str(index: u32) -> &'static str {
    let table = name_table().lock().expect("span-name table poisoned");
    table.get(index as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Time base
// ---------------------------------------------------------------------------

/// Nanoseconds since the process trace epoch (first use). A `u64` time
/// base keeps every timestamp atomic-friendly.
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SpanCell {
    name: AtomicU32,
    parent: AtomicU32,
    start: AtomicU64,
    dur: AtomicU64,
}

impl SpanCell {
    fn new() -> SpanCell {
        SpanCell {
            name: AtomicU32::new(0),
            parent: AtomicU32::new(NO_PARENT),
            start: AtomicU64::new(0),
            dur: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct Slot {
    /// Seqlock: odd while a trace records into the slot, even when stable.
    seq: AtomicU64,
    /// Global publish stamp (0 = nothing published here).
    publish: AtomicU64,
    id_hi: AtomicU64,
    id_lo: AtomicU64,
    verb: AtomicU32,
    request_id: AtomicU64,
    start_ns: AtomicU64,
    total_ns: AtomicU64,
    /// Span cells claimed (may exceed capacity; the excess is `dropped`).
    len: AtomicU32,
    spans: Vec<SpanCell>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            publish: AtomicU64::new(0),
            id_hi: AtomicU64::new(0),
            id_lo: AtomicU64::new(0),
            verb: AtomicU32::new(0),
            request_id: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            len: AtomicU32::new(0),
            spans: (0..MAX_TIMELINE_SPANS).map(|_| SpanCell::new()).collect(),
        }
    }
}

#[derive(Debug)]
struct Ring {
    slots: Vec<Slot>,
    cursor: AtomicUsize,
    publish_counter: AtomicU64,
    sample_every: AtomicU64,
    sample_tick: AtomicU64,
    slow_only_ns: AtomicU64,
    dropped_traces: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..RING_SLOTS).map(|_| Slot::new()).collect(),
        cursor: AtomicUsize::new(0),
        publish_counter: AtomicU64::new(0),
        sample_every: AtomicU64::new(1),
        sample_tick: AtomicU64::new(0),
        slow_only_ns: AtomicU64::new(0),
        dropped_traces: AtomicU64::new(0),
    })
}

/// Sets the sampling knob: requests without an explicit client trace id
/// are traced every `every`-th request (`1` = all, the default; `0` =
/// explicit ids only). Client-supplied ids are always traced.
pub fn set_sampling(every: u64) {
    ring().sample_every.store(every, Ordering::Relaxed);
}

/// Slow-only mode: finished timelines shorter than `min` are discarded
/// instead of published (`None` keeps everything, the default).
pub fn set_slow_only(min: Option<Duration>) {
    let ns = min.map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
    ring().slow_only_ns.store(ns, Ordering::Relaxed);
}

/// Whether the sampling knob elects the next implicit (no client id)
/// request for tracing. One relaxed fetch-add; allocation-free.
#[must_use]
pub fn should_sample() -> bool {
    let r = ring();
    let every = r.sample_every.load(Ordering::Relaxed);
    if every == 0 {
        return false;
    }
    r.sample_tick
        .fetch_add(1, Ordering::Relaxed)
        .is_multiple_of(every)
}

/// Traces dropped because every ring slot was busy recording.
#[must_use]
pub fn dropped_traces() -> u64 {
    ring().dropped_traces.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// A claimed, in-progress timeline slot. `Copy` so it can cross threads
/// through spawn closures and frame queues without allocating. All record
/// operations validate the claim against the slot's seqlock, so a stale
/// handle (slot since recycled) degrades to a no-op instead of corrupting
/// a newer trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceHandle {
    slot: u32,
    claim: u64,
    start_ns: u64,
}

/// Starts recording a timeline for one request. Returns `None` when every
/// slot is mid-recording (the trace is dropped and counted). The returned
/// handle must eventually reach [`finish`], or its slot stays claimed
/// until the ring wraps past it.
#[must_use]
pub fn start(id: TraceId, verb: SpanName, request_id: u64) -> Option<TraceHandle> {
    let r = ring();
    for _ in 0..RING_SLOTS {
        let i = r.cursor.fetch_add(1, Ordering::Relaxed) % RING_SLOTS;
        let slot = &r.slots[i];
        let seq = slot.seq.load(Ordering::Relaxed);
        if !seq.is_multiple_of(2) {
            continue; // someone is recording here
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let start = now_ns();
        slot.publish.store(0, Ordering::Relaxed);
        slot.id_hi.store((id.0 >> 64) as u64, Ordering::Relaxed);
        slot.id_lo.store(id.0 as u64, Ordering::Relaxed);
        slot.verb.store(verb.0, Ordering::Relaxed);
        slot.request_id.store(request_id, Ordering::Relaxed);
        slot.start_ns.store(start, Ordering::Relaxed);
        slot.total_ns.store(0, Ordering::Relaxed);
        slot.len.store(0, Ordering::Relaxed);
        return Some(TraceHandle {
            slot: i as u32,
            claim: seq + 1,
            start_ns: start,
        });
    }
    r.dropped_traces.fetch_add(1, Ordering::Relaxed);
    None
}

/// Records one already-measured interval into the timeline with no parent
/// (for threads that know a span only after the fact, e.g. the writer
/// recording a frame's queue wait). `start_abs_ns` is a [`timestamp_ns`]-domain
/// timestamp captured when the interval began. Allocation-free.
pub fn record_span(handle: TraceHandle, name: SpanName, start_abs_ns: u64, dur_ns: u64) {
    let slot = &ring().slots[handle.slot as usize];
    if slot.seq.load(Ordering::Acquire) != handle.claim {
        return;
    }
    let idx = slot.len.fetch_add(1, Ordering::Relaxed);
    if (idx as usize) >= MAX_TIMELINE_SPANS {
        return;
    }
    let cell = &slot.spans[idx as usize];
    cell.name.store(name.0, Ordering::Relaxed);
    cell.parent.store(NO_PARENT, Ordering::Relaxed);
    cell.start.store(
        start_abs_ns.saturating_sub(handle.start_ns),
        Ordering::Relaxed,
    );
    cell.dur.store(dur_ns, Ordering::Relaxed);
}

/// An opaque monotonic timestamp for [`record_span`] intervals.
#[must_use]
pub fn timestamp_ns() -> u64 {
    now_ns()
}

/// Finishes the timeline: stamps the total duration and publishes the
/// slot (or discards it under slow-only mode). When `snapshot_if_at_least`
/// is set and the total reaches it, the completed [`Timeline`] is copied
/// out and returned — the daemon's slow-request WARN path; the copy
/// allocates, the normal path does not.
pub fn finish(handle: TraceHandle, snapshot_if_at_least: Option<u64>) -> (u64, Option<Timeline>) {
    let r = ring();
    let slot = &r.slots[handle.slot as usize];
    let total = now_ns().saturating_sub(handle.start_ns);
    if slot.seq.load(Ordering::Acquire) != handle.claim {
        return (total, None);
    }
    slot.total_ns.store(total, Ordering::Relaxed);
    let snapshot = match snapshot_if_at_least {
        Some(min) if total >= min => Some(read_slot(slot)),
        _ => None,
    };
    let slow_only = r.slow_only_ns.load(Ordering::Relaxed);
    if slow_only == 0 || total >= slow_only {
        let stamp = r.publish_counter.fetch_add(1, Ordering::Relaxed) + 1;
        slot.publish.store(stamp, Ordering::Relaxed);
    }
    slot.seq.store(handle.claim + 1, Ordering::Release);
    (total, snapshot)
}

// ---------------------------------------------------------------------------
// The thread-local current trace
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct TraceCtx {
    handle: TraceHandle,
    parent: u32,
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// RAII installation of a request's trace as this thread's current trace;
/// restores the previous current trace (if any) on drop.
#[derive(Debug)]
#[must_use = "the scope uninstalls the trace on drop; binding to `_` drops it immediately"]
pub struct TraceScope {
    prev: Option<TraceCtx>,
}

/// Makes `handle` the current trace for this thread: every span guard
/// entered while the returned scope lives records into its timeline.
pub fn install(handle: TraceHandle) -> TraceScope {
    let prev = CURRENT.with(|c| {
        c.replace(Some(TraceCtx {
            handle,
            parent: NO_PARENT,
        }))
    });
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// The handle installed on this thread, if any (for propagating the
/// current trace into frames or child workers).
#[must_use]
pub fn current() -> Option<TraceHandle> {
    CURRENT.with(|c| c.get()).map(|ctx| ctx.handle)
}

/// Book-keeping a span guard carries when its scope is part of a trace.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TracedSpan {
    handle: TraceHandle,
    index: u32,
    prev_parent: u32,
}

/// Claims the next span cell of the current trace (if one is installed),
/// making it the parent of nested spans. Allocation-free.
pub(crate) fn enter_span(name: SpanName) -> Option<TracedSpan> {
    let ctx = CURRENT.with(|c| c.get())?;
    let slot = &ring().slots[ctx.handle.slot as usize];
    if slot.seq.load(Ordering::Acquire) != ctx.handle.claim {
        return None;
    }
    let idx = slot.len.fetch_add(1, Ordering::Relaxed);
    if (idx as usize) >= MAX_TIMELINE_SPANS {
        return None; // recorded as dropped_spans at read time
    }
    let cell = &slot.spans[idx as usize];
    cell.name.store(name.0, Ordering::Relaxed);
    cell.parent.store(ctx.parent, Ordering::Relaxed);
    cell.start.store(
        now_ns().saturating_sub(ctx.handle.start_ns),
        Ordering::Relaxed,
    );
    cell.dur.store(0, Ordering::Relaxed);
    CURRENT.with(|c| {
        c.set(Some(TraceCtx {
            handle: ctx.handle,
            parent: idx,
        }));
    });
    Some(TracedSpan {
        handle: ctx.handle,
        index: idx,
        prev_parent: ctx.parent,
    })
}

/// Closes a traced span: stamps its duration and restores the parent.
pub(crate) fn exit_span(span: TracedSpan) {
    let slot = &ring().slots[span.handle.slot as usize];
    if slot.seq.load(Ordering::Acquire) == span.handle.claim {
        let cell = &slot.spans[span.index as usize];
        let start = cell.start.load(Ordering::Relaxed);
        let now = now_ns().saturating_sub(span.handle.start_ns);
        cell.dur.store(now.saturating_sub(start), Ordering::Relaxed);
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.get() {
            c.set(Some(TraceCtx {
                handle: ctx.handle,
                parent: span.prev_parent,
            }));
        }
    });
}

// ---------------------------------------------------------------------------
// Reading timelines
// ---------------------------------------------------------------------------

/// One span of a completed timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's registered name (e.g. `serve.request`).
    pub name: String,
    /// Index of the enclosing span within the same timeline, if any.
    pub parent: Option<u32>,
    /// Offset from the trace start, nanoseconds.
    pub start_ns: u64,
    /// Wall time inside the span, nanoseconds.
    pub duration_ns: u64,
}

/// One request's completed timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// The trace id (client-supplied or daemon-minted).
    pub trace: TraceId,
    /// The request verb (e.g. `sample`).
    pub verb: String,
    /// The request's protocol-v2 id (0 for v1 requests).
    pub request_id: u64,
    /// End-to-end duration, nanoseconds.
    pub total_ns: u64,
    /// Spans that ran but did not fit in the slot's capacity.
    pub dropped_spans: u64,
    /// Recorded spans, in claim order (parents always precede children).
    pub spans: Vec<SpanRecord>,
    /// Ring publish stamp — higher is more recent. Not serialized.
    pub order: u64,
}

fn read_slot(slot: &Slot) -> Timeline {
    let len = slot.len.load(Ordering::Relaxed);
    let stored = (len as usize).min(MAX_TIMELINE_SPANS);
    let mut spans = Vec::with_capacity(stored);
    for cell in &slot.spans[..stored] {
        let parent = cell.parent.load(Ordering::Relaxed);
        spans.push(SpanRecord {
            name: name_str(cell.name.load(Ordering::Relaxed)).to_string(),
            parent: (parent != NO_PARENT).then_some(parent),
            start_ns: cell.start.load(Ordering::Relaxed),
            duration_ns: cell.dur.load(Ordering::Relaxed),
        });
    }
    let hi = slot.id_hi.load(Ordering::Relaxed);
    let lo = slot.id_lo.load(Ordering::Relaxed);
    Timeline {
        trace: TraceId(((hi as u128) << 64) | lo as u128),
        verb: name_str(slot.verb.load(Ordering::Relaxed)).to_string(),
        request_id: slot.request_id.load(Ordering::Relaxed),
        total_ns: slot.total_ns.load(Ordering::Relaxed),
        dropped_spans: u64::from(len) - stored as u64,
        spans,
        order: slot.publish.load(Ordering::Relaxed),
    }
}

/// Filters for [`snapshot_traces`].
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    /// At most this many timelines, most recent first (0 = all retained).
    pub last: usize,
    /// Only timelines of this verb.
    pub verb: Option<String>,
    /// Only timelines at least this long, nanoseconds.
    pub min_total_ns: u64,
}

/// Copies the published timelines out of the ring, most recent first,
/// applying `filter`. Lock-free with respect to writers: a slot that
/// changes mid-copy is discarded and the stable value (if any) re-read.
#[must_use]
pub fn snapshot_traces(filter: &TraceFilter) -> TraceReport {
    let r = ring();
    let mut timelines = Vec::new();
    for slot in &r.slots {
        // Seqlock read: stable (even, same before and after) or skip.
        for _ in 0..4 {
            let before = slot.seq.load(Ordering::Acquire);
            if before % 2 != 0 || slot.publish.load(Ordering::Relaxed) == 0 {
                break;
            }
            let timeline = read_slot(slot);
            // Order the field loads above before the re-check below.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == before {
                timelines.push(timeline);
                break;
            }
        }
    }
    timelines.sort_by_key(|t| std::cmp::Reverse(t.order));
    timelines.retain(|t| {
        t.total_ns >= filter.min_total_ns && filter.verb.as_ref().is_none_or(|verb| &t.verb == verb)
    });
    if filter.last > 0 {
        timelines.truncate(filter.last);
    }
    TraceReport {
        timelines,
        dropped_traces: dropped_traces(),
    }
}

// ---------------------------------------------------------------------------
// The wire document
// ---------------------------------------------------------------------------

/// A set of timelines as served by the `TRACE` verb, schema
/// [`TRACE_SCHEMA`]. Round-trips through [`TraceReport::to_json`] /
/// [`TraceReport::from_json`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Retained timelines, most recent first.
    pub timelines: Vec<Timeline>,
    /// Traces dropped because the ring had no free slot.
    pub dropped_traces: u64,
}

fn encode_request_id(id: u64) -> Json {
    if id < MAX_EXACT_JSON_INT {
        Json::Num(id as f64)
    } else {
        Json::Str(id.to_string())
    }
}

fn decode_request_id(value: Option<&Json>) -> Result<u64, String> {
    match value {
        Some(v @ Json::Num(_)) => v.as_u64().ok_or_else(|| "id must be integral".to_string()),
        Some(Json::Str(s)) => s
            .parse()
            .map_err(|_| "id string must be decimal".to_string()),
        _ => Err("timeline missing id".to_string()),
    }
}

impl TraceReport {
    /// Encodes the report as a schema-versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let traces = self
            .timelines
            .iter()
            .map(|t| {
                let spans = t
                    .spans
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::from(s.name.as_str())),
                            (
                                "parent",
                                s.parent.map_or(Json::Null, |p| Json::Num(f64::from(p))),
                            ),
                            ("start_ns", Json::Num(s.start_ns as f64)),
                            ("dur_ns", Json::Num(s.duration_ns as f64)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("trace", Json::Str(t.trace.to_hex())),
                    ("verb", Json::from(t.verb.as_str())),
                    ("id", encode_request_id(t.request_id)),
                    ("total_ns", Json::Num(t.total_ns as f64)),
                    ("dropped_spans", Json::Num(t.dropped_spans as f64)),
                    ("spans", Json::Arr(spans)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::from(TRACE_SCHEMA)),
            ("dropped_traces", Json::Num(self.dropped_traces as f64)),
            ("traces", Json::Arr(traces)),
        ])
    }

    /// Decodes a schema-v1 trace report, rejecting other generations.
    pub fn from_json(value: &Json) -> Result<TraceReport, String> {
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("trace report missing schema")?;
        if schema != TRACE_SCHEMA {
            return Err(format!(
                "unsupported trace schema {schema:?} (expected {TRACE_SCHEMA:?})"
            ));
        }
        let dropped_traces = value
            .get("dropped_traces")
            .and_then(Json::as_u64)
            .ok_or("trace report missing dropped_traces")?;
        let mut timelines = Vec::new();
        for (order, t) in value
            .get("traces")
            .and_then(Json::as_arr)
            .ok_or("trace report missing traces")?
            .iter()
            .enumerate()
        {
            let trace = t
                .get("trace")
                .and_then(Json::as_str)
                .and_then(TraceId::parse)
                .ok_or("timeline missing trace id")?;
            let verb = t
                .get("verb")
                .and_then(Json::as_str)
                .ok_or("timeline missing verb")?
                .to_string();
            let request_id = decode_request_id(t.get("id"))?;
            let total_ns = t
                .get("total_ns")
                .and_then(Json::as_u64)
                .ok_or("timeline missing total_ns")?;
            let dropped_spans = t
                .get("dropped_spans")
                .and_then(Json::as_u64)
                .ok_or("timeline missing dropped_spans")?;
            let mut spans = Vec::new();
            for s in t
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or("timeline missing spans")?
            {
                let parent = match s.get("parent") {
                    Some(Json::Null) | None => None,
                    Some(p) => Some(p.as_u64().ok_or("span parent must be integral")? as u32),
                };
                spans.push(SpanRecord {
                    name: s
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("span missing name")?
                        .to_string(),
                    parent,
                    start_ns: s
                        .get("start_ns")
                        .and_then(Json::as_u64)
                        .ok_or("span missing start_ns")?,
                    duration_ns: s
                        .get("dur_ns")
                        .and_then(Json::as_u64)
                        .ok_or("span missing dur_ns")?,
                });
            }
            timelines.push(Timeline {
                trace,
                verb,
                request_id,
                total_ns,
                dropped_spans,
                spans,
                // Re-derive recency from document order (most recent first).
                order: u64::MAX - order as u64,
            });
        }
        Ok(TraceReport {
            timelines,
            dropped_traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring and its knobs are process-global; tests that record or
    /// reconfigure serialize so one test's slow-only mode cannot discard
    /// another's timelines.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static SERIAL: Mutex<()> = Mutex::new(());
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn trace_id_hex_round_trip_and_rejection() {
        let id = TraceId::from_u128(0x00FF_1234_5678_9ABC_DEF0_1122_3344_5566);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::parse(&hex), Some(id));
        // Short ids parse; junk does not.
        assert_eq!(TraceId::parse("ff"), Some(TraceId::from_u128(0xff)));
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse(&"a".repeat(33)), None);
        assert_ne!(TraceId::mint(), TraceId::mint());
    }

    #[test]
    fn start_record_finish_publishes_a_timeline() {
        let _guard = serial();
        let verb = span_name("test.verb.basic");
        let inner = span_name("test.span.inner");
        let id = TraceId::mint();
        let handle = start(id, verb, 42).expect("ring has room");
        {
            let _scope = install(handle);
            let outer = enter_span(span_name("test.span.outer")).expect("traced");
            let nested = enter_span(inner).expect("traced");
            exit_span(nested);
            exit_span(outer);
        }
        let (total, snap) = finish(handle, Some(0));
        let snap = snap.expect("snapshot above threshold");
        assert_eq!(snap.trace, id);
        assert_eq!(snap.verb, "test.verb.basic");
        assert_eq!(snap.request_id, 42);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "test.span.outer");
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].name, "test.span.inner");
        assert_eq!(snap.spans[1].parent, Some(0));
        assert!(total >= snap.spans[0].duration_ns);

        let report = snapshot_traces(&TraceFilter {
            verb: Some("test.verb.basic".to_string()),
            ..TraceFilter::default()
        });
        assert!(report.timelines.iter().any(|t| t.trace == id));
    }

    #[test]
    fn spans_outside_a_scope_or_after_finish_are_ignored() {
        let _guard = serial();
        assert!(enter_span(span_name("test.span.orphan")).is_none());
        let verb = span_name("test.verb.stale");
        let handle = start(TraceId::mint(), verb, 1).expect("room");
        let (_, _) = finish(handle, None);
        // The handle is stale now: records must be no-ops.
        record_span(handle, span_name("test.span.stale"), timestamp_ns(), 5);
        let report = snapshot_traces(&TraceFilter {
            verb: Some("test.verb.stale".to_string()),
            ..TraceFilter::default()
        });
        let t = report
            .timelines
            .iter()
            .find(|t| t.verb == "test.verb.stale")
            .expect("published");
        assert!(t.spans.iter().all(|s| s.name != "test.span.stale"));
    }

    #[test]
    fn slow_only_mode_discards_fast_timelines() {
        let _guard = serial();
        set_slow_only(Some(Duration::from_secs(3600)));
        let verb = span_name("test.verb.slowonly");
        let handle = start(TraceId::mint(), verb, 9).expect("room");
        let (_, snap) = finish(handle, None);
        assert!(snap.is_none());
        set_slow_only(None);
        let report = snapshot_traces(&TraceFilter {
            verb: Some("test.verb.slowonly".to_string()),
            ..TraceFilter::default()
        });
        assert!(
            report.timelines.is_empty(),
            "fast timeline must be discarded"
        );
    }

    #[test]
    fn filter_by_min_duration_and_last() {
        let _guard = serial();
        let verb = span_name("test.verb.filter");
        for i in 0..3 {
            let handle = start(TraceId::from_u128(1000 + i), verb, i as u64).expect("room");
            let (_, _) = finish(handle, None);
        }
        let all = snapshot_traces(&TraceFilter {
            verb: Some("test.verb.filter".to_string()),
            ..TraceFilter::default()
        });
        assert_eq!(all.timelines.len(), 3);
        // Most recent first.
        assert!(all.timelines[0].order > all.timelines[2].order);
        let last_one = snapshot_traces(&TraceFilter {
            verb: Some("test.verb.filter".to_string()),
            last: 1,
            ..TraceFilter::default()
        });
        assert_eq!(last_one.timelines.len(), 1);
        assert_eq!(last_one.timelines[0].trace, all.timelines[0].trace);
        let none = snapshot_traces(&TraceFilter {
            verb: Some("test.verb.filter".to_string()),
            min_total_ns: u64::MAX,
            ..TraceFilter::default()
        });
        assert!(none.timelines.is_empty());
    }

    #[test]
    fn span_overflow_counts_dropped_spans() {
        let _guard = serial();
        let verb = span_name("test.verb.overflow");
        let name = span_name("test.span.many");
        let handle = start(TraceId::mint(), verb, 3).expect("room");
        {
            let _scope = install(handle);
            for _ in 0..(MAX_TIMELINE_SPANS + 10) {
                if let Some(s) = enter_span(name) {
                    exit_span(s);
                }
            }
        }
        let (_, snap) = finish(handle, Some(0));
        let snap = snap.expect("snapshot");
        assert_eq!(snap.spans.len(), MAX_TIMELINE_SPANS);
        assert_eq!(snap.dropped_spans, 10);
    }

    #[test]
    fn report_json_round_trips() {
        let report = TraceReport {
            timelines: vec![Timeline {
                trace: TraceId::from_u128(0xABCD),
                verb: "sample".to_string(),
                request_id: u64::MAX - 7, // above 2^53: decimal-string path
                total_ns: 12345,
                dropped_spans: 1,
                spans: vec![
                    SpanRecord {
                        name: "serve.request".to_string(),
                        parent: None,
                        start_ns: 0,
                        duration_ns: 12000,
                    },
                    SpanRecord {
                        name: "engine.round".to_string(),
                        parent: Some(0),
                        start_ns: 100,
                        duration_ns: 900,
                    },
                ],
                order: u64::MAX,
            }],
            dropped_traces: 2,
        };
        let text = report.to_json().encode();
        assert!(text.starts_with("{\"schema\":\"htsat-trace-v1\""));
        let back = TraceReport::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, report);

        let mut wrong = report.to_json();
        if let Json::Obj(pairs) = &mut wrong {
            pairs[0].1 = Json::from("htsat-trace-v0");
        }
        let err = TraceReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("unsupported trace schema"), "{err}");
    }
}
