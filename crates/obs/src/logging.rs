//! A tiny leveled logger for daemon diagnostics.
//!
//! Replaces ad-hoc `eprintln!` calls with timestamped, filtered lines:
//!
//! ```text
//! 2026-08-07T12:34:56.789Z  INFO listening on 127.0.0.1:7878
//! ```
//!
//! The filter comes from the `HTSAT_LOG` environment variable
//! (`error|warn|info|debug`, default `info`), read once per process;
//! [`set_max_level`] overrides it programmatically. Each record is
//! formatted into a single buffer and written to stderr with one locked
//! `write_all`, so lines from concurrent sessions never interleave
//! mid-line. Disabled levels cost one relaxed atomic load — the message is
//! never formatted.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what it was asked to.
    Error,
    /// Something went wrong but was handled (e.g. a bad request).
    Warn,
    /// Lifecycle events worth one line each (default level).
    Info,
    /// Per-connection / per-request tracing.
    Debug,
}

impl Level {
    /// Fixed-width upper-case tag used in log lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => " WARN",
            Level::Info => " INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn from_index(index: usize) -> Level {
        match index {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        }
    }

    /// Parses an `HTSAT_LOG` value (case-insensitive). `None` for unknown
    /// values, which callers treat as the default.
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

// Stored as `level as usize + 1`, with 0 meaning "not yet initialized from
// the environment" so the first check pays the env read and later checks
// are one relaxed load.
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(0);

fn init_from_env() -> usize {
    let level = std::env::var("HTSAT_LOG")
        .ok()
        .as_deref()
        .and_then(Level::parse)
        .unwrap_or(Level::Info);
    let encoded = level as usize + 1;
    // Racing initializers compute the same value; last store wins harmlessly.
    MAX_LEVEL.store(encoded, Ordering::Relaxed);
    encoded
}

/// The most verbose level currently emitted.
#[must_use]
pub fn max_level() -> Level {
    let mut encoded = MAX_LEVEL.load(Ordering::Relaxed);
    if encoded == 0 {
        encoded = init_from_env();
    }
    Level::from_index(encoded - 1)
}

/// Overrides the `HTSAT_LOG` filter for this process.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as usize + 1, Ordering::Relaxed);
}

/// Whether a record at `level` would be emitted. The logging macros check
/// this before formatting.
#[must_use]
pub fn log_enabled(level: Level) -> bool {
    level <= max_level()
}

/// Formats and writes one log record. Use the [`error!`](crate::error),
/// [`warn!`](crate::warn), [`info!`](crate::info), or
/// [`debug!`](crate::debug) macros instead of calling this directly.
pub fn write_log(level: Level, args: std::fmt::Arguments<'_>) {
    let mut line = String::with_capacity(64);
    format_timestamp(&mut line);
    let _ = writeln!(line, " {} {args}", level.as_str());
    // One locked write per record: concurrent sessions cannot interleave
    // mid-line. Logging failures are swallowed — there is nowhere to report
    // them.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// Appends a UTC `YYYY-MM-DDTHH:MM:SS.mmmZ` timestamp for "now".
fn format_timestamp(out: &mut String) {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let secs = now.as_secs();
    let (year, month, day) = civil_from_days((secs / 86_400) as i64);
    let rem = secs % 86_400;
    let _ = write!(
        out,
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{:03}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60,
        now.subsec_millis()
    );
}

/// Days-since-epoch to civil date (Howard Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {{
        if $crate::log_enabled($crate::Level::Error) {
            $crate::write_log($crate::Level::Error, ::core::format_args!($($arg)*));
        }
    }};
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {{
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::write_log($crate::Level::Warn, ::core::format_args!($($arg)*));
        }
    }};
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {{
        if $crate::log_enabled($crate::Level::Info) {
            $crate::write_log($crate::Level::Info, ::core::format_args!($($arg)*));
        }
    }};
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {{
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::write_log($crate::Level::Debug, ::core::format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn filter_gates_levels() {
        set_max_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_max_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        set_max_level(Level::Info);
    }

    #[test]
    fn timestamp_shape_is_iso8601() {
        let mut s = String::new();
        format_timestamp(&mut s);
        assert_eq!(s.len(), 24, "{s}");
        assert_eq!(&s[4..5], "-");
        assert_eq!(&s[10..11], "T");
        assert!(s.ends_with('Z'), "{s}");
    }

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_088), (2024, 12, 31));
    }
}
