//! The process-wide metrics registry: lock-free counters, gauges, and
//! fixed-bucket log-scale histograms.
//!
//! # Design
//!
//! Metrics are registered **by name** the first time a call site asks for
//! them; registration takes a mutex and allocates, but returns a shared
//! handle ([`Arc`]) whose update operations are single relaxed atomic
//! instructions — no locks, no allocation, safe inside the sampler round
//! loop. The [`counter!`], [`gauge!`], and [`histogram!`] macros cache the
//! handle in a per-call-site `OnceLock`, so the steady-state cost of
//! `counter!("x").inc()` is one atomic load plus one atomic add.
//!
//! Snapshots ([`Registry::snapshot`]) walk the registry under the lock and
//! read every atomic once (relaxed); the result is deterministic because the
//! maps are ordered by name, not by registration order. [`Registry::reset`]
//! zeroes counters and histograms but leaves gauges alone — gauges are
//! *levels* (in-flight connections, resident engines), not totals, and
//! resetting them would desynchronize them from the state they mirror.
//!
//! Relaxed ordering is deliberate: metrics are observer-only and never used
//! for synchronization, so the cheapest ordering is the correct one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero (for instance registries; prefer
    /// [`Registry::counter`] or the [`counter!`](crate::counter) macro).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed level that can move both ways (in-flight requests, resident
/// entries). Unlike counters, gauges survive [`Registry::reset`].
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero (for instance registries; prefer
    /// [`Registry::gauge`] or the [`gauge!`](crate::gauge) macro).
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in every [`Histogram`]: one per power of two of the
/// recorded value, so bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 also
/// absorbs zero). 64 buckets cover the full `u64` range — for latencies in
/// nanoseconds that spans sub-nanosecond to ~584 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log-scale histogram (power-of-two buckets).
///
/// Recording is three relaxed atomic adds and never allocates. The bucket
/// layout is fixed at compile time, so histograms from different processes
/// or runs are always comparable bucket-for-bucket.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram (for instance registries; prefer
    /// [`Registry::histogram`] or the [`histogram!`](crate::histogram) macro).
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value lands in: `floor(log2(value))`, with 0 and 1
    /// both landing in bucket 0. A value exactly on a bucket's lower edge
    /// (`2^i`) lands in bucket `i`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value < 2 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        }
    }

    /// The `[lower, upper)` value range of bucket `i` (the last bucket is
    /// closed at `u64::MAX`).
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        let lower = if index == 0 { 0 } else { 1u64 << index };
        let upper = if index >= 63 {
            u64::MAX
        } else {
            1u64 << (index + 1)
        };
        (lower, upper)
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics.
///
/// Most code uses the process-wide [`global`] registry through the macros;
/// instance registries exist so unit tests can exercise registration and
/// snapshotting in isolation.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. The same name always returns the same underlying counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(c) = inner.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(g) = inner.gauges.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner.gauges.insert(name.to_owned(), Arc::clone(&g));
        g
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(h) = inner.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Reads every metric once (relaxed) into a deterministic, name-ordered
    /// [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Zeroes all counters and histograms; gauges keep their levels.
    ///
    /// Best-effort under concurrency: increments racing the reset land on
    /// either side of it, which is acceptable for observer-only telemetry.
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        for c in inner.counters.values() {
            c.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }
}

/// The process-wide registry every macro records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Returns a `&'static Counter` from the [`global`] registry, registering it
/// on first use and caching the handle per call site.
///
/// ```
/// htsat_obs::counter!("example.requests").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**SLOT.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Returns a `&'static Gauge` from the [`global`] registry, registering it
/// on first use and caching the handle per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**SLOT.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Returns a `&'static Histogram` from the [`global`] registry, registering
/// it on first use and caching the handle per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**SLOT.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_moves_both_ways_and_survives_reset() {
        let reg = Registry::new();
        let g = reg.gauge("level");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        reg.counter("total").add(9);
        reg.reset();
        assert_eq!(g.get(), 1, "gauges are levels, reset must not zero them");
        assert_eq!(reg.counter("total").get(), 0);
    }

    #[test]
    fn bucket_index_hits_exact_edges() {
        // Lower edges land in their own bucket; one below lands one lower.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        for i in 1..HISTOGRAM_BUCKETS {
            let (lower, upper) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lower), i, "lower edge of {i}");
            assert_eq!(
                Histogram::bucket_index(lower - 1),
                i - 1,
                "below lower edge of {i}"
            );
            if i < 63 {
                assert_eq!(Histogram::bucket_index(upper - 1), i, "top of bucket {i}");
                assert_eq!(Histogram::bucket_index(upper), i + 1, "upper edge of {i}");
            }
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 2));
        assert_eq!(Histogram::bucket_bounds(1), (2, 4));
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let (_, upper) = Histogram::bucket_bounds(i);
            let (next_lower, _) = Histogram::bucket_bounds(i + 1);
            assert_eq!(upper, next_lower, "buckets {i} and {} must abut", i + 1);
        }
        assert_eq!(Histogram::bucket_bounds(63).1, u64::MAX);
    }

    #[test]
    fn histogram_records_count_sum_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(1024);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1027);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0, 2), (1, 1), (10, 1)]);
    }

    #[test]
    fn concurrent_hammer_totals_are_exact() {
        const THREADS: usize = 8;
        const INCREMENTS: u64 = 10_000;
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let reg = &reg;
                scope.spawn(move || {
                    let c = reg.counter("hammer.counter");
                    let g = reg.gauge("hammer.gauge");
                    let h = reg.histogram("hammer.hist");
                    for i in 0..INCREMENTS {
                        c.inc();
                        g.add(if t % 2 == 0 { 1 } else { -1 });
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(
            reg.counter("hammer.counter").get(),
            THREADS as u64 * INCREMENTS
        );
        // Equal numbers of +1 and -1 writers cancel exactly.
        assert_eq!(reg.gauge("hammer.gauge").get(), 0);
        let h = reg.histogram("hammer.hist").snapshot();
        assert_eq!(h.count, THREADS as u64 * INCREMENTS);
        assert_eq!(
            h.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            THREADS as u64 * INCREMENTS
        );
    }

    #[test]
    fn global_macros_share_one_registry() {
        crate::counter!("metrics.test.macro").add(2);
        crate::counter!("metrics.test.macro").inc();
        assert!(global().counter("metrics.test.macro").get() >= 3);
        crate::gauge!("metrics.test.gauge").set(7);
        assert_eq!(global().gauge("metrics.test.gauge").get(), 7);
        crate::histogram!("metrics.test.hist").record(5);
        assert!(global().histogram("metrics.test.hist").count() >= 1);
    }
}
