//! Concurrency hammer for the trace ring: writer threads racing reader
//! threads must never expose a *torn* timeline — a published timeline
//! whose fields mix two different traces.
//!
//! Every writer stamps a self-describing pattern (the trace id equals the
//! request id, the verb names the writer, every iteration records exactly
//! the same span tree), so any cross-trace mixing a reader could observe
//! breaks an invariant check. Runs as its own integration test binary so
//! no unit test's knob twiddling interferes with the process-global ring.

use htsat_obs as obs;
use htsat_obs::trace::{self, SpanName, TraceFilter, TraceId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;
const READERS: usize = 2;
const ITERATIONS: u64 = 500;
/// 3 outer/inner pairs per trace (see `write_one`).
const SPANS_PER_TRACE: usize = 6;

fn writer_verb(writer: usize) -> &'static str {
    ["hammer.w0", "hammer.w1", "hammer.w2", "hammer.w3"][writer]
}

fn write_one(writer: usize, iteration: u64, verb: SpanName) {
    let request_id = (writer as u64) * 1_000_000 + iteration;
    let Some(handle) = trace::start(TraceId::from_u128(u128::from(request_id)), verb, request_id)
    else {
        return; // ring momentarily full under contention: dropped + counted
    };
    {
        let _scope = trace::install(handle);
        for _ in 0..SPANS_PER_TRACE / 2 {
            let outer = obs::span!("hammer.outer");
            {
                let _inner = obs::span!("hammer.inner");
            }
            drop(outer);
        }
    }
    let (_total, _snapshot) = trace::finish(handle, None);
}

/// Checks one observed timeline against the writers' fixed pattern.
/// Returns whether it was one of ours (readers may also see timelines from
/// `start`-but-unfinished slots — they must not, which this verifies too).
fn check_timeline(t: &obs::trace::Timeline) {
    let writer = (t.request_id / 1_000_000) as usize;
    let iteration = t.request_id % 1_000_000;
    assert!(
        writer < WRITERS,
        "request id {} from no writer",
        t.request_id
    );
    assert!(iteration < ITERATIONS);
    assert_eq!(
        t.trace.as_u128(),
        u128::from(t.request_id),
        "trace id and request id must come from the same trace (torn slot?)"
    );
    assert_eq!(
        t.verb,
        writer_verb(writer),
        "verb must match the writer that owns request id {}",
        t.request_id
    );
    assert_eq!(
        t.spans.len(),
        SPANS_PER_TRACE,
        "incomplete timeline published"
    );
    assert_eq!(t.dropped_spans, 0);
    for (i, span) in t.spans.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(span.name, "hammer.outer", "span {i}");
            assert_eq!(span.parent, None, "outer spans are roots");
        } else {
            assert_eq!(span.name, "hammer.inner", "span {i}");
            assert_eq!(
                span.parent,
                Some(i as u32 - 1),
                "inner spans nest under the preceding outer"
            );
        }
        assert!(
            span.start_ns + span.duration_ns <= t.total_ns,
            "span {i} ends after the trace total ({} + {} > {})",
            span.start_ns,
            span.duration_ns,
            t.total_ns
        );
    }
}

fn main() {
    let done = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let done = Arc::clone(&done);
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let report = trace::snapshot_traces(&TraceFilter::default());
                    for t in &report.timelines {
                        check_timeline(t);
                    }
                    observed.fetch_add(report.timelines.len() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|writer| {
            std::thread::spawn(move || {
                let verb = trace::span_name(writer_verb(writer));
                for iteration in 0..ITERATIONS {
                    write_one(writer, iteration, verb);
                }
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked (invariant violation)");
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked (torn timeline observed)");
    }

    // The ring must have retained fully-checked recent timelines.
    let report = trace::snapshot_traces(&TraceFilter::default());
    assert!(!report.timelines.is_empty(), "ring retained nothing");
    for t in &report.timelines {
        check_timeline(t);
    }
    println!(
        "test trace_ring_hammer ... ok ({} writer timelines, {} reader observations, {} dropped)",
        WRITERS as u64 * ITERATIONS,
        observed.load(Ordering::Relaxed),
        report.dropped_traces
    );
}
