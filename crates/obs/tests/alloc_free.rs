//! Proof that the metrics + span + trace-record hot path performs **zero
//! heap allocations** after registration — the acceptance criterion that
//! makes instrumentation safe inside the sampler round loop and lets the
//! daemon trace every request, checked with a counting global allocator
//! rather than a promise.
//!
//! Runs without the libtest harness (`harness = false` in `Cargo.toml`) so
//! no concurrent harness thread can allocate while the counter is armed.

use htsat_obs as obs;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One iteration of the instrumented hot path: a full *traced* request —
/// start a timeline, install it as the thread's current trace, run a span
/// guard (which records into the timeline), per-span events,
/// counter/gauge updates, a histogram record, a writer-style external
/// interval record, and finish — exactly the mix one daemon request drives.
fn hot_path(i: u64, verb: obs::trace::SpanName, wait: obs::trace::SpanName) {
    let handle = obs::trace::start(obs::TraceId::from_u128(u128::from(i) + 1), verb, i);
    assert!(
        handle.is_some(),
        "sequential traces always find a free slot"
    );
    let scope = handle.map(obs::trace::install);
    {
        let span = obs::span!("alloc.round");
        obs::counter!("alloc.rounds").inc();
        obs::counter!("alloc.samples").add(8);
        obs::gauge!("alloc.in_flight").set(i as i64 % 4);
        obs::histogram!("alloc.latency").record(i * 37);
        span.events(2);
    }
    drop(scope);
    if let Some(h) = handle {
        // The writer's queue-wait style record: an interval known after
        // the fact, attributed without a thread-local install.
        obs::trace::record_span(h, wait, obs::trace::timestamp_ns(), 10);
        let (_total, snapshot) = obs::trace::finish(h, None);
        assert!(snapshot.is_none(), "no WARN threshold, no copy, no alloc");
    }
}

fn main() {
    // Warm-up: first executions register the metrics, intern the span
    // names, and allocate the trace ring (this allocates, and is allowed
    // to — the contract is zero allocations *after* registration).
    let verb = obs::trace::span_name("alloc.request");
    let wait = obs::trace::span_name("alloc.queue_wait");
    hot_path(0, verb, wait);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    for i in 0..4096 {
        hot_path(i, verb, wait);
    }
    TRACKING.store(false, Ordering::SeqCst);
    let counted = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        counted, 0,
        "metrics/span/trace hot path allocated {counted} times over 4096 iterations"
    );
    assert_eq!(obs::global().counter("alloc.rounds").get(), 4097);
    assert_eq!(obs::global().histogram("alloc.round").count(), 4097);

    // Snapshotting is off the hot path and may allocate freely; sanity-check
    // it sees the recorded values.
    let snapshot = obs::global().snapshot();
    assert_eq!(snapshot.counter("alloc.samples"), Some(4097 * 8));
    assert_eq!(snapshot.counter("alloc.round.events"), Some(4097 * 2));

    // The traced requests really recorded timelines: the ring retains the
    // most recent ones, each with the guard span and the external record.
    let report = obs::trace::snapshot_traces(&obs::trace::TraceFilter::default());
    assert!(!report.timelines.is_empty(), "ring must retain timelines");
    assert_eq!(report.dropped_traces, 0);
    for timeline in &report.timelines {
        assert_eq!(timeline.verb, "alloc.request");
        assert_eq!(timeline.spans.len(), 2);
        assert_eq!(timeline.spans[0].name, "alloc.round");
        assert_eq!(timeline.spans[1].name, "alloc.queue_wait");
    }
    println!("test metrics_span_traced_hot_path_performs_zero_allocations ... ok (0 allocations over 4096 traced iterations)");
}
