//! Proof that the metrics + span hot path performs **zero heap
//! allocations** after registration — the acceptance criterion that makes
//! instrumentation safe inside the sampler round loop, checked with a
//! counting global allocator rather than a promise.
//!
//! Runs without the libtest harness (`harness = false` in `Cargo.toml`) so
//! no concurrent harness thread can allocate while the counter is armed.

use htsat_obs as obs;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One iteration of the instrumented hot path: a span guard, per-span
/// events, counter/gauge updates, and a histogram record — exactly the mix
/// the stream round loop and the executor regions use.
fn hot_path(i: u64) {
    let span = obs::span!("alloc.round");
    obs::counter!("alloc.rounds").inc();
    obs::counter!("alloc.samples").add(8);
    obs::gauge!("alloc.in_flight").set(i as i64 % 4);
    obs::histogram!("alloc.latency").record(i * 37);
    span.events(2);
}

fn main() {
    // Warm-up: first executions register the metrics (this allocates, and
    // is allowed to — the contract is zero allocations *after* registration).
    hot_path(0);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    for i in 0..4096 {
        hot_path(i);
    }
    TRACKING.store(false, Ordering::SeqCst);
    let counted = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        counted, 0,
        "metrics/span hot path allocated {counted} times over 4096 iterations"
    );
    assert_eq!(obs::global().counter("alloc.rounds").get(), 4097);
    assert_eq!(obs::global().histogram("alloc.round").count(), 4097);

    // Snapshotting is off the hot path and may allocate freely; sanity-check
    // it sees the recorded values.
    let snapshot = obs::global().snapshot();
    assert_eq!(snapshot.counter("alloc.samples"), Some(4097 * 8));
    assert_eq!(snapshot.counter("alloc.round.events"), Some(4097 * 2));
    println!("test metrics_span_hot_path_performs_zero_allocations ... ok (0 allocations over 4096 iterations)");
}
