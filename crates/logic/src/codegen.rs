//! Code generation from netlists.
//!
//! The paper's workflow (Fig. 1c) emits a PyTorch description of the
//! probabilistic multi-level Boolean function; this module reproduces that
//! emitter so transformed circuits can be inspected or executed under the
//! original PyTorch prototype, and additionally provides Graphviz DOT export
//! for visualising the recovered circuit structure.

use crate::{GateKind, Netlist, NodeRef};
use std::fmt::Write;

/// Emits a PyTorch `nn.Module` describing the probabilistic form of the
/// netlist, mirroring the paper's Fig. 1(c).
///
/// Primary inputs become the module's input tuple (named `x<var>`), gate
/// nodes become assignments using the soft `AND`/`OR`/`NOT`/`XOR` helper
/// functions, and the constrained outputs are returned as a tuple.
pub fn to_pytorch(netlist: &Netlist, module_name: &str) -> String {
    let mut out = String::new();
    out.push_str("import torch.nn as nn\n\n");
    out.push_str(
        "def AND(*xs):\n    y = xs[0]\n    for x in xs[1:]:\n        y = y * x\n    return y\n\n",
    );
    out.push_str("def OR(*xs):\n    y = 1 - xs[0]\n    for x in xs[1:]:\n        y = y * (1 - x)\n    return 1 - y\n\n");
    out.push_str("def NOT(a):\n    return 1 - a\n\n");
    out.push_str("def XOR(a, b):\n    return a + b - 2 * a * b\n\n");
    let _ = writeln!(out, "class {module_name}(nn.Module):");
    out.push_str("    def __init__(self):\n        super().__init__()\n\n");
    out.push_str("    def forward(self, inputs):\n");
    let inputs: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .map(|v| format!("x{v}"))
        .collect();
    if inputs.is_empty() {
        out.push_str("        _ = inputs\n");
    } else {
        let _ = writeln!(out, "        {} = inputs", inputs.join(", "));
    }
    for (idx, node) in netlist.nodes().iter().enumerate() {
        let name = node_name(netlist, idx);
        match node {
            NodeRef::Input(_) => {}
            NodeRef::Const(b) => {
                let _ = writeln!(out, "        {name} = {}", if *b { "1.0" } else { "0.0" });
            }
            NodeRef::Gate { kind, fanin } => {
                let args: Vec<String> = fanin
                    .iter()
                    .map(|f| node_name(netlist, f.index()))
                    .collect();
                let expr = match kind {
                    GateKind::Buf => args[0].clone(),
                    GateKind::Not => format!("NOT({})", args[0]),
                    GateKind::And => format!("AND({})", args.join(", ")),
                    GateKind::Or => format!("OR({})", args.join(", ")),
                    GateKind::Nand => format!("NOT(AND({}))", args.join(", ")),
                    GateKind::Nor => format!("NOT(OR({}))", args.join(", ")),
                    GateKind::Xor => fold_xor(&args, false),
                    GateKind::Xnor => fold_xor(&args, true),
                };
                let _ = writeln!(out, "        {name} = {expr}");
            }
        }
    }
    let outputs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|o| node_name(netlist, o.node.index()))
        .collect();
    if outputs.is_empty() {
        out.push_str("        return ()\n");
    } else {
        let _ = writeln!(out, "        outputs = ({},)", outputs.join(", "));
        out.push_str("        return outputs\n");
    }
    out
}

fn fold_xor(args: &[String], complemented: bool) -> String {
    let mut expr = args[0].clone();
    for a in &args[1..] {
        expr = format!("XOR({expr}, {a})");
    }
    if complemented {
        format!("NOT({expr})")
    } else {
        expr
    }
}

/// A stable textual name for a node: `x<var>` when the node drives a CNF
/// variable, otherwise `n<index>`.
fn node_name(netlist: &Netlist, index: usize) -> String {
    if let NodeRef::Input(v) = netlist.nodes()[index] {
        return format!("x{v}");
    }
    // Prefer the lowest bound variable name if one exists.
    let mut best: Option<u32> = None;
    for (var, node) in netlist.bound_vars() {
        if node.index() == index {
            best = Some(best.map_or(var, |b| b.min(var)));
        }
    }
    match best {
        Some(var) => format!("x{var}"),
        None => format!("n{index}"),
    }
}

/// Emits a Graphviz DOT description of the netlist: inputs as boxes, gates as
/// ellipses labelled with their function, constrained outputs double-circled
/// with their target value.
pub fn to_dot(netlist: &Netlist, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    out.push_str("  rankdir=LR;\n");
    for (idx, node) in netlist.nodes().iter().enumerate() {
        let name = node_name(netlist, idx);
        match node {
            NodeRef::Input(v) => {
                let _ = writeln!(out, "  \"{name}\" [shape=box, label=\"x{v}\"];");
            }
            NodeRef::Const(b) => {
                let _ = writeln!(out, "  \"{name}\" [shape=box, label=\"{}\"];", u8::from(*b));
            }
            NodeRef::Gate { kind, fanin } => {
                let _ = writeln!(out, "  \"{name}\" [shape=ellipse, label=\"{kind}\"];");
                for f in fanin {
                    let src = node_name(netlist, f.index());
                    let _ = writeln!(out, "  \"{src}\" -> \"{name}\";");
                }
            }
        }
    }
    for (i, output) in netlist.outputs().iter().enumerate() {
        let src = node_name(netlist, output.node.index());
        let _ = writeln!(
            out,
            "  \"out{i}\" [shape=doublecircle, label=\"= {}\"];",
            u8::from(output.target)
        );
        let _ = writeln!(out, "  \"{src}\" -> \"out{i}\";");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    fn mux_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let expr = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(3)]),
        ]);
        let node = nl.add_expr(&expr);
        nl.bind_var(4, node);
        nl.add_output(node, true, Some(4));
        nl
    }

    #[test]
    fn pytorch_output_contains_module_and_gates() {
        let nl = mux_netlist();
        let code = to_pytorch(&nl, "DUT");
        assert!(code.contains("class DUT(nn.Module):"));
        assert!(code.contains("x1, x2, x3 = inputs"));
        assert!(code.contains("AND("));
        assert!(code.contains("OR("));
        assert!(code.contains("return outputs"));
        // The output node is bound to x4 and returned.
        assert!(code.contains("outputs = (x4,)"));
    }

    #[test]
    fn pytorch_output_handles_xor_and_constants() {
        let mut nl = Netlist::new();
        let x = nl.add_expr(&Expr::xor(vec![Expr::var(1), Expr::var(2), Expr::var(3)]));
        let k = nl.add_const(true);
        nl.add_output(x, true, None);
        nl.add_output(k, true, None);
        let code = to_pytorch(&nl, "XorDut");
        assert!(code.contains("XOR(XOR(x1, x2), x3)") || code.contains("XOR(x1, x2)"));
        assert!(code.contains("= 1.0"));
    }

    #[test]
    fn dot_output_lists_nodes_and_constraints() {
        let nl = mux_netlist();
        let dot = to_dot(&nl, "mux");
        assert!(dot.starts_with("digraph mux {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("-> \"out0\";"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_netlist_produces_valid_skeletons() {
        let nl = Netlist::new();
        let code = to_pytorch(&nl, "Empty");
        assert!(code.contains("return ()"));
        let dot = to_dot(&nl, "empty");
        assert!(dot.contains("digraph empty"));
    }
}
