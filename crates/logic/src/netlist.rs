//! Multi-level, multi-output Boolean functions (netlists).
//!
//! A [`Netlist`] is the target representation of the paper's transformation
//! algorithm: an acyclic, gate-level description of the CNF in which
//! variables are classified as primary inputs, intermediate variables and
//! primary outputs, and constrained outputs carry an explicit target value.

use crate::{Expr, GateKind, VarId};
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from a dense index (the inverse of
    /// [`NodeId::index`], for artifact deserialization). Returns `None`
    /// when the index does not fit the id's backing width; range checking
    /// against an actual netlist is [`Netlist::from_raw_parts`]'s job.
    pub fn from_index(index: usize) -> Option<NodeId> {
        u32::try_from(index).ok().map(NodeId)
    }
}

/// A single node of the netlist.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A primary-input node carrying a CNF variable.
    Input(VarId),
    /// A constant node.
    Const(bool),
    /// A logic gate over previously created nodes.
    Gate {
        /// The gate function.
        kind: GateKind,
        /// Fan-in nodes, all strictly earlier in the node list.
        fanin: Vec<NodeId>,
    },
}

/// An explicitly constrained primary output of the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputConstraint {
    /// The node whose value is constrained.
    pub node: NodeId,
    /// The value the node must take in any satisfying assignment.
    pub target: bool,
    /// The CNF variable associated with this output, if any.
    pub var: Option<VarId>,
}

/// A multi-level, multi-output Boolean function.
///
/// Nodes are stored in topological order by construction (gates may only
/// reference already existing nodes), and structurally identical gates are
/// hash-consed so shared logic is represented once.
#[derive(Clone, Default)]
pub struct Netlist {
    nodes: Vec<NodeRef>,
    /// Hash-consing table: structural node → id.
    dedup: HashMap<NodeRef, NodeId>,
    /// CNF variable → node currently driving it.
    driver: HashMap<VarId, NodeId>,
    /// Variables introduced as primary inputs, in first-use order.
    primary_inputs: Vec<VarId>,
    /// Explicitly constrained outputs.
    outputs: Vec<OutputConstraint>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Number of nodes (inputs, constants and gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[NodeRef] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &NodeRef {
        &self.nodes[id.index()]
    }

    /// Primary-input variables in first-use order.
    pub fn primary_inputs(&self) -> &[VarId] {
        &self.primary_inputs
    }

    /// The constrained primary outputs.
    pub fn outputs(&self) -> &[OutputConstraint] {
        &self.outputs
    }

    /// The node currently bound as the driver of `var`, if any.
    pub fn driver_of(&self, var: VarId) -> Option<NodeId> {
        self.driver.get(&var).copied()
    }

    /// Variables bound to a driver node (primary inputs and intermediate
    /// variables alike).
    pub fn bound_vars(&self) -> impl Iterator<Item = (VarId, NodeId)> + '_ {
        self.driver.iter().map(|(&v, &n)| (v, n))
    }

    fn intern(&mut self, node: NodeRef) -> NodeId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.dedup.insert(node.clone(), id);
        self.nodes.push(node);
        id
    }

    /// Adds (or reuses) a constant node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.intern(NodeRef::Const(value))
    }

    /// Adds (or reuses) a primary-input node for `var` and registers the
    /// variable as a primary input.
    pub fn add_input(&mut self, var: VarId) -> NodeId {
        if let Some(id) = self.driver.get(&var) {
            return *id;
        }
        let id = self.intern(NodeRef::Input(var));
        self.driver.insert(var, id);
        self.primary_inputs.push(var);
        id
    }

    /// Adds (or reuses) a gate node.
    ///
    /// # Panics
    ///
    /// Panics if any fan-in node id is out of range, or if a unary gate is
    /// given a fan-in of length other than one.
    pub fn add_gate(&mut self, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        assert!(
            fanin.iter().all(|f| f.index() < self.nodes.len()),
            "fan-in node out of range"
        );
        if kind.is_unary() {
            assert_eq!(fanin.len(), 1, "unary gate must have exactly one input");
        }
        // Single-input AND/OR collapse to a buffer of their operand.
        if matches!(kind, GateKind::And | GateKind::Or | GateKind::Xor) && fanin.len() == 1 {
            return fanin[0];
        }
        self.intern(NodeRef::Gate { kind, fanin })
    }

    /// Binds `var` to be driven by `node` (declaring it an intermediate or
    /// output variable rather than a primary input).
    ///
    /// # Panics
    ///
    /// Panics if `var` is already bound to a different node.
    pub fn bind_var(&mut self, var: VarId, node: NodeId) {
        if let Some(&existing) = self.driver.get(&var) {
            assert_eq!(existing, node, "variable {var} already bound to a driver");
            return;
        }
        self.driver.insert(var, node);
    }

    /// Adds an expression to the netlist, resolving variable references to
    /// their current drivers (creating primary inputs for unbound variables),
    /// and returns the node computing the expression.
    pub fn add_expr(&mut self, expr: &Expr) -> NodeId {
        match expr {
            Expr::Const(b) => self.add_const(*b),
            Expr::Var(v) => match self.driver.get(v) {
                Some(&id) => id,
                None => self.add_input(*v),
            },
            Expr::Not(e) => {
                let inner = self.add_expr(e);
                self.add_gate(GateKind::Not, vec![inner])
            }
            Expr::And(es) => {
                let fanin: Vec<NodeId> = es.iter().map(|e| self.add_expr(e)).collect();
                self.add_gate(GateKind::And, fanin)
            }
            Expr::Or(es) => {
                let fanin: Vec<NodeId> = es.iter().map(|e| self.add_expr(e)).collect();
                self.add_gate(GateKind::Or, fanin)
            }
            Expr::Xor(es) => {
                let fanin: Vec<NodeId> = es.iter().map(|e| self.add_expr(e)).collect();
                self.add_gate(GateKind::Xor, fanin)
            }
        }
    }

    /// Declares a constrained primary output.
    pub fn add_output(&mut self, node: NodeId, target: bool, var: Option<VarId>) {
        self.outputs.push(OutputConstraint { node, target, var });
    }

    /// Rebuilds a netlist from its serialized parts (the inverse of reading
    /// [`Netlist::nodes`], [`Netlist::primary_inputs`],
    /// [`Netlist::bound_vars`] and [`Netlist::outputs`] back out), restoring
    /// every builder invariant: topological order, hash-consing, collapsed
    /// single-input associative gates, and driver bindings.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant — the caller
    /// (an on-disk artifact cache) treats any error as a cache miss, so a
    /// corrupt or hand-edited file can never produce a structurally invalid
    /// netlist.
    pub fn from_raw_parts(
        nodes: Vec<NodeRef>,
        primary_inputs: Vec<VarId>,
        bound_vars: Vec<(VarId, NodeId)>,
        outputs: Vec<OutputConstraint>,
    ) -> Result<Netlist, String> {
        let mut dedup = HashMap::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if let NodeRef::Gate { kind, fanin } = node {
                if let Some(bad) = fanin.iter().find(|f| f.index() >= i) {
                    return Err(format!(
                        "node {i}: fan-in {} is not strictly earlier",
                        bad.index()
                    ));
                }
                if kind.is_unary() && fanin.len() != 1 {
                    return Err(format!("node {i}: unary gate with {} inputs", fanin.len()));
                }
                if matches!(kind, GateKind::And | GateKind::Or | GateKind::Xor) && fanin.len() < 2 {
                    return Err(format!(
                        "node {i}: associative gate with {} inputs (should have \
                         collapsed at build time)",
                        fanin.len()
                    ));
                }
            }
            let id = NodeId(i as u32);
            if dedup.insert(node.clone(), id).is_some() {
                return Err(format!("node {i}: duplicate structural node"));
            }
        }
        let mut driver = HashMap::with_capacity(bound_vars.len());
        for &(var, node) in &bound_vars {
            if node.index() >= nodes.len() {
                return Err(format!("binding of variable {var}: node out of range"));
            }
            if driver.insert(var, node).is_some() {
                return Err(format!("variable {var} bound twice"));
            }
        }
        for &var in &primary_inputs {
            match driver.get(&var).map(|id| &nodes[id.index()]) {
                Some(NodeRef::Input(v)) if *v == var => {}
                _ => {
                    return Err(format!(
                        "primary input {var} is not driven by its own input node"
                    ))
                }
            }
        }
        if let Some(bad) = outputs.iter().find(|o| o.node.index() >= nodes.len()) {
            return Err(format!(
                "output constraint on node {} out of range",
                bad.node.index()
            ));
        }
        Ok(Netlist {
            nodes,
            dedup,
            driver,
            primary_inputs,
            outputs,
        })
    }

    /// Evaluates every node under the given primary-input values.
    ///
    /// Unlisted primary inputs default to `false`. Returns the value of every
    /// node indexed by [`NodeId::index`].
    pub fn evaluate<F: Fn(VarId) -> bool>(&self, input_value: F) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                NodeRef::Input(v) => input_value(*v),
                NodeRef::Const(b) => *b,
                NodeRef::Gate { kind, fanin } => {
                    let inputs: Vec<bool> = fanin.iter().map(|f| values[f.index()]).collect();
                    kind.eval(&inputs)
                }
            };
        }
        values
    }

    /// Evaluates the netlist and checks every output constraint.
    pub fn outputs_satisfied<F: Fn(VarId) -> bool>(&self, input_value: F) -> bool {
        let values = self.evaluate(input_value);
        self.outputs
            .iter()
            .all(|o| values[o.node.index()] == o.target)
    }

    /// Total 2-input gate-equivalent operation count of the netlist.
    ///
    /// This is the circuit-side quantity of the paper's Fig. 4 ops-reduction
    /// metric.
    pub fn op_count(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match n {
                NodeRef::Input(_) | NodeRef::Const(_) => 0,
                NodeRef::Gate { kind, fanin } => kind.op_count(fanin.len()),
            })
            .sum()
    }

    /// Longest input-to-node path length (logic depth) of the netlist.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            if let NodeRef::Gate { fanin, .. } = node {
                depth[i] = 1 + fanin.iter().map(|f| depth[f.index()]).max().unwrap_or(0);
                max = max.max(depth[i]);
            }
        }
        max
    }

    /// Nodes reachable (transitively, through fan-in) from the constrained
    /// outputs. These form the *constrained paths* of the paper; inputs not in
    /// this cone lie on unconstrained paths and may be assigned freely.
    pub fn constrained_cone(&self) -> Vec<bool> {
        let mut in_cone = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|o| o.node).collect();
        while let Some(id) = stack.pop() {
            if in_cone[id.index()] {
                continue;
            }
            in_cone[id.index()] = true;
            if let NodeRef::Gate { fanin, .. } = &self.nodes[id.index()] {
                stack.extend(fanin.iter().copied());
            }
        }
        in_cone
    }

    /// Splits the primary inputs into (constrained, unconstrained) sets
    /// according to whether they feed a constrained output.
    pub fn partition_inputs(&self) -> (Vec<VarId>, Vec<VarId>) {
        let cone = self.constrained_cone();
        let mut constrained = Vec::new();
        let mut unconstrained = Vec::new();
        for &v in &self.primary_inputs {
            let id = self.driver[&v];
            if cone[id.index()] {
                constrained.push(v);
            } else {
                unconstrained.push(v);
            }
        }
        (constrained, unconstrained)
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Netlist{{nodes: {}, inputs: {}, outputs: {}, ops: {}}}",
            self.nodes.len(),
            self.primary_inputs.len(),
            self.outputs.len(),
            self.op_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Fig. 1 example circuit directly.
    fn fig1_netlist() -> Netlist {
        let mut nl = Netlist::new();
        // x2 = ¬x1 ; x3 = x2 ; x4 = x3
        let x1 = nl.add_input(1);
        let x2 = nl.add_gate(GateKind::Not, vec![x1]);
        nl.bind_var(2, x2);
        nl.bind_var(3, x2);
        nl.bind_var(4, x2);
        // x5 = (x4 ∧ x11) ∨ (¬x4 ∧ x12)
        let x11 = nl.add_input(11);
        let x12 = nl.add_input(12);
        let a = nl.add_gate(GateKind::And, vec![x2, x11]);
        let nx4 = nl.add_gate(GateKind::Not, vec![x2]);
        let b = nl.add_gate(GateKind::And, vec![nx4, x12]);
        let x5 = nl.add_gate(GateKind::Or, vec![a, b]);
        nl.bind_var(5, x5);
        // x9 = ¬x6 (through buffers x7, x8)
        let x6 = nl.add_input(6);
        let x9 = nl.add_gate(GateKind::Not, vec![x6]);
        nl.bind_var(9, x9);
        // x10 = (x9 ∧ x13) ∨ (¬x9 ∧ x14), constrained to 1
        let x13 = nl.add_input(13);
        let x14 = nl.add_input(14);
        let c = nl.add_gate(GateKind::And, vec![x9, x13]);
        let nx9 = nl.add_gate(GateKind::Not, vec![x9]);
        let d = nl.add_gate(GateKind::And, vec![nx9, x14]);
        let x10 = nl.add_gate(GateKind::Or, vec![c, d]);
        nl.bind_var(10, x10);
        nl.add_output(x10, true, Some(10));
        nl
    }

    #[test]
    fn evaluation_follows_gate_semantics() {
        let nl = fig1_netlist();
        // x6=0 → x9=1 → x10 = x13
        let sat = nl.outputs_satisfied(|v| matches!(v, 13));
        assert!(sat);
        let unsat = nl.outputs_satisfied(|v| matches!(v, 14));
        assert!(!unsat); // x9=1 selects x13 which is 0
    }

    #[test]
    fn hash_consing_shares_structure() {
        let mut nl = Netlist::new();
        let a = nl.add_input(1);
        let b = nl.add_input(2);
        let g1 = nl.add_gate(GateKind::And, vec![a, b]);
        let g2 = nl.add_gate(GateKind::And, vec![a, b]);
        assert_eq!(g1, g2);
        assert_eq!(nl.num_nodes(), 3);
    }

    #[test]
    fn single_input_gates_collapse() {
        let mut nl = Netlist::new();
        let a = nl.add_input(1);
        let g = nl.add_gate(GateKind::And, vec![a]);
        assert_eq!(g, a);
    }

    #[test]
    fn add_expr_resolves_bound_and_unbound_vars() {
        let mut nl = Netlist::new();
        let x1 = nl.add_input(1);
        let not1 = nl.add_gate(GateKind::Not, vec![x1]);
        nl.bind_var(2, not1);
        // x3 = x2 ∧ x4: x2 resolves to the NOT gate, x4 becomes a new PI.
        let expr = Expr::and(vec![Expr::var(2), Expr::var(4)]);
        let n = nl.add_expr(&expr);
        nl.bind_var(3, n);
        assert_eq!(nl.primary_inputs(), &[1, 4]);
        let values = nl.evaluate(|v| v == 4);
        assert!(values[n.index()]); // ¬x1 ∧ x4 with x1=0, x4=1
    }

    #[test]
    fn op_count_counts_two_input_equivalents() {
        let nl = fig1_netlist();
        // 2 NOT (x2, nx4) reused... count explicitly instead of guessing:
        let expected: u64 = nl
            .nodes()
            .iter()
            .map(|n| match n {
                NodeRef::Gate { kind, fanin } => kind.op_count(fanin.len()),
                _ => 0,
            })
            .sum();
        assert_eq!(nl.op_count(), expected);
        assert!(nl.op_count() >= 8);
    }

    #[test]
    fn constrained_partition_matches_paper_example() {
        let nl = fig1_netlist();
        let (constrained, unconstrained) = nl.partition_inputs();
        // x6, x13, x14 feed the constrained output x10; x1, x11, x12 do not.
        assert_eq!(constrained, vec![6, 13, 14]);
        assert_eq!(unconstrained, vec![1, 11, 12]);
    }

    #[test]
    fn depth_reflects_longest_path() {
        let nl = fig1_netlist();
        assert!(nl.depth() >= 3);
        let empty = Netlist::new();
        assert_eq!(empty.depth(), 0);
    }

    #[test]
    fn raw_parts_round_trip_preserves_structure_and_semantics() {
        let nl = fig1_netlist();
        let rebuilt = Netlist::from_raw_parts(
            nl.nodes().to_vec(),
            nl.primary_inputs().to_vec(),
            nl.bound_vars().collect(),
            nl.outputs().to_vec(),
        )
        .expect("round trip");
        assert_eq!(rebuilt.nodes(), nl.nodes());
        assert_eq!(rebuilt.primary_inputs(), nl.primary_inputs());
        assert_eq!(rebuilt.outputs(), nl.outputs());
        assert_eq!(rebuilt.op_count(), nl.op_count());
        assert!(rebuilt.outputs_satisfied(|v| matches!(v, 13)));
        // Hash-consing is restored: re-adding an existing gate reuses it.
        let mut rebuilt = rebuilt;
        let before = rebuilt.num_nodes();
        let x1 = rebuilt.driver_of(1).expect("x1 bound");
        let again = rebuilt.add_gate(GateKind::Not, vec![x1]);
        assert_eq!(rebuilt.num_nodes(), before);
        assert_eq!(again, rebuilt.driver_of(2).expect("x2 bound"));
    }

    #[test]
    fn raw_parts_reject_invalid_structure() {
        let fwd = NodeRef::Gate {
            kind: GateKind::Not,
            fanin: vec![NodeId::from_index(1).unwrap()],
        };
        assert!(Netlist::from_raw_parts(vec![fwd], vec![], vec![], vec![])
            .unwrap_err()
            .contains("strictly earlier"));
        let nodes = vec![NodeRef::Input(1)];
        assert!(Netlist::from_raw_parts(
            nodes.clone(),
            vec![],
            vec![],
            vec![OutputConstraint {
                node: NodeId::from_index(7).unwrap(),
                target: true,
                var: None,
            }],
        )
        .unwrap_err()
        .contains("out of range"));
        assert!(
            Netlist::from_raw_parts(nodes.clone(), vec![1], vec![], vec![])
                .unwrap_err()
                .contains("not driven"),
            "primary input without a driver binding"
        );
        let dup = vec![NodeRef::Input(1), NodeRef::Input(1)];
        assert!(Netlist::from_raw_parts(dup, vec![], vec![], vec![])
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn rebinding_variable_to_different_node_panics() {
        let mut nl = Netlist::new();
        let a = nl.add_input(1);
        let b = nl.add_input(2);
        nl.bind_var(3, a);
        nl.bind_var(3, b);
    }
}
