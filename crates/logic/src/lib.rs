//! # htsat-logic
//!
//! Symbolic Boolean algebra and multi-level netlists for the high-throughput
//! SAT sampling library.
//!
//! The paper's transformation algorithm (Algorithm 1) needs three symbolic
//! capabilities that it obtains from SymPy in the reference implementation:
//!
//! 1. deriving a Boolean expression from a group of clauses,
//! 2. checking whether two expressions are complements of each other, and
//! 3. simplifying the accepted expression before adding it to the circuit.
//!
//! This crate supplies Rust-native replacements:
//!
//! * [`Expr`] — a Boolean expression AST over integer-identified variables,
//! * [`TruthTable`] — exact canonical forms over small supports, used for
//!   complement/equivalence checking ([`TruthTable::is_complement_of`]),
//! * [`simplify`] — Quine–McCluskey-based two-level minimisation lifted back
//!   into factored expressions,
//! * [`Netlist`] — the multi-level, multi-output Boolean function produced by
//!   the transformation, with structural hashing, topological evaluation and
//!   2-input gate-equivalent operation counting,
//! * [`codegen`] — PyTorch (the paper's Fig. 1c) and Graphviz DOT emitters
//!   for recovered netlists.
//!
//! # Example
//!
//! ```
//! use htsat_logic::{Expr, TruthTable};
//!
//! // f = (x1 ∧ x2) ∨ (¬x1 ∧ x3)   (a 2:1 multiplexer)
//! let f = Expr::or(vec![
//!     Expr::and(vec![Expr::var(1), Expr::var(2)]),
//!     Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(3)]),
//! ]);
//! let g = f.complement();
//! assert!(TruthTable::from_expr(&f).is_complement_of(&TruthTable::from_expr(&g)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
mod expr;
mod gate;
mod netlist;
pub mod simplify;
mod truth_table;

pub use expr::{Expr, VarId};
pub use gate::GateKind;
pub use netlist::{Netlist, NodeId, NodeRef, OutputConstraint};
pub use truth_table::{TruthTable, MAX_SUPPORT};
