//! Logic gate kinds shared by the netlist and the differentiable circuit.

use std::fmt;

/// The kind of a logic gate in a multi-level netlist.
///
/// Gates are n-ary where that is meaningful (`And`, `Or`, `Xor` and their
/// complemented forms); `Not` and `Buf` are unary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Unary buffer (identity).
    Buf,
    /// Unary inverter.
    Not,
    /// n-ary conjunction.
    And,
    /// n-ary disjunction.
    Or,
    /// Complemented conjunction.
    Nand,
    /// Complemented disjunction.
    Nor,
    /// n-ary exclusive OR (odd parity).
    Xor,
    /// Complemented exclusive OR (even parity).
    Xnor,
}

impl GateKind {
    /// Evaluates the gate over boolean fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if a unary gate receives a fan-in of length other than one.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "Buf takes exactly one input");
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "Not takes exactly one input");
                !inputs[0]
            }
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |a, &b| a ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |a, &b| a ^ b),
        }
    }

    /// Whether the gate is unary.
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Buf | GateKind::Not)
    }

    /// Number of 2-input gate equivalents for a gate of this kind with
    /// `fanin` inputs.
    ///
    /// Inverting kinds cost one extra inverter on top of their base gate
    /// (except `Not` itself, which costs exactly one).
    pub fn op_count(self, fanin: usize) -> u64 {
        let n = fanin as u64;
        match self {
            GateKind::Buf => 0,
            GateKind::Not => 1,
            GateKind::And | GateKind::Or | GateKind::Xor => n.saturating_sub(1),
            GateKind::Nand | GateKind::Nor | GateKind::Xnor => n.saturating_sub(1) + 1,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_semantics() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    #[test]
    fn empty_fanin_identities() {
        assert!(GateKind::And.eval(&[]));
        assert!(!GateKind::Or.eval(&[]));
        assert!(!GateKind::Xor.eval(&[]));
    }

    #[test]
    fn op_counts() {
        assert_eq!(GateKind::And.op_count(4), 3);
        assert_eq!(GateKind::Nand.op_count(4), 4);
        assert_eq!(GateKind::Not.op_count(1), 1);
        assert_eq!(GateKind::Buf.op_count(1), 0);
        assert_eq!(GateKind::Or.op_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn unary_gate_rejects_wide_fanin() {
        GateKind::Not.eval(&[true, false]);
    }
}
