//! Exact truth-table canonical forms over small supports.
//!
//! The transformation algorithm only manipulates sub-expressions whose support
//! is a handful of variables (the clause groups produced by Tseitin-encoding a
//! gate), so an explicit truth table is an exact and fast canonical form for
//! complement checking, equivalence checking and two-level minimisation.

use crate::{Expr, VarId};

/// Maximum support size for which truth tables are constructed (2^20 rows,
/// 128 KiB of bits). Larger supports are rejected with `None` by the fallible
/// constructors.
pub const MAX_SUPPORT: usize = 20;

/// An explicit truth table of a Boolean function over a fixed, sorted support.
///
/// Row `i` (for `i` in `0..2^k`) assigns bit `j` of `i` to the `j`-th support
/// variable; `bits` stores the function value of each row packed in `u64`
/// words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    support: Vec<VarId>,
    bits: Vec<u64>,
}

impl TruthTable {
    /// Builds the truth table of `expr` over its own support.
    ///
    /// # Panics
    ///
    /// Panics if the support exceeds [`MAX_SUPPORT`]; use
    /// [`TruthTable::try_from_expr`] for a fallible version.
    pub fn from_expr(expr: &Expr) -> Self {
        Self::try_from_expr(expr).expect("expression support exceeds MAX_SUPPORT")
    }

    /// Builds the truth table of `expr` over its own support, or `None` if the
    /// support exceeds [`MAX_SUPPORT`].
    pub fn try_from_expr(expr: &Expr) -> Option<Self> {
        let support = expr.support();
        Self::try_from_expr_with_support(expr, &support)
    }

    /// Builds the truth table of `expr` over an explicitly given support.
    ///
    /// Every variable of `expr` must be contained in `support`. Returns `None`
    /// if `support` exceeds [`MAX_SUPPORT`].
    pub fn try_from_expr_with_support(expr: &Expr, support: &[VarId]) -> Option<Self> {
        if support.len() > MAX_SUPPORT {
            return None;
        }
        let mut support = support.to_vec();
        support.sort_unstable();
        support.dedup();
        debug_assert!(
            expr.support().iter().all(|v| support.contains(v)),
            "expression support must be a subset of the given support"
        );
        let rows = 1usize << support.len();
        let words = rows.div_ceil(64);
        let mut bits = vec![0u64; words];
        for row in 0..rows {
            let lookup = |v: VarId| {
                let pos = support
                    .binary_search(&v)
                    .expect("variable outside declared support");
                (row >> pos) & 1 == 1
            };
            if expr.eval_with(lookup) {
                bits[row / 64] |= 1u64 << (row % 64);
            }
        }
        Some(TruthTable { support, bits })
    }

    /// The sorted support of the function.
    pub fn support(&self) -> &[VarId] {
        &self.support
    }

    /// Number of rows (`2^k` for a support of size `k`).
    pub fn num_rows(&self) -> usize {
        1usize << self.support.len()
    }

    /// The value of the function on `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> bool {
        assert!(row < self.num_rows(), "row out of range");
        self.bits[row / 64] >> (row % 64) & 1 == 1
    }

    /// Number of satisfying rows (the on-set size).
    pub fn count_ones(&self) -> u64 {
        let rows = self.num_rows();
        let mut total = 0u64;
        for (w, word) in self.bits.iter().enumerate() {
            let valid = if (w + 1) * 64 <= rows {
                *word
            } else {
                let keep = rows - w * 64;
                if keep == 0 {
                    0
                } else {
                    word & ((1u64 << keep) - 1)
                }
            };
            total += valid.count_ones() as u64;
        }
        total
    }

    /// Whether the function is constantly true.
    pub fn is_const_true(&self) -> bool {
        self.count_ones() == self.num_rows() as u64
    }

    /// Whether the function is constantly false.
    pub fn is_const_false(&self) -> bool {
        self.count_ones() == 0
    }

    /// Returns `Some(value)` if the function is constant.
    pub fn as_const(&self) -> Option<bool> {
        if self.is_const_true() {
            Some(true)
        } else if self.is_const_false() {
            Some(false)
        } else {
            None
        }
    }

    /// Checks semantic equality with `other` after aligning supports.
    ///
    /// Functions over different supports are compared over the union of their
    /// supports (variables absent from one function are don't-cares there,
    /// i.e. the function must not depend on them to be equal).
    pub fn is_equivalent_to(&self, other: &TruthTable) -> bool {
        self.compare_with(other, false)
    }

    /// Checks whether `other` is the pointwise complement of `self`.
    ///
    /// This is the core validity check of the transformation algorithm: the
    /// on-set expression derived for a candidate output variable must be the
    /// complement of its off-set expression.
    pub fn is_complement_of(&self, other: &TruthTable) -> bool {
        self.compare_with(other, true)
    }

    fn compare_with(&self, other: &TruthTable, complemented: bool) -> bool {
        let mut union: Vec<VarId> = self
            .support
            .iter()
            .chain(other.support.iter())
            .copied()
            .collect();
        union.sort_unstable();
        union.dedup();
        if union.len() > MAX_SUPPORT {
            // Fall back to comparing only if supports are identical.
            if self.support != other.support {
                return false;
            }
            let rows = self.num_rows();
            return (0..rows).all(|r| self.value(r) == (other.value(r) ^ complemented));
        }
        let rows = 1usize << union.len();
        for row in 0..rows {
            let a = self.eval_on_union(&union, row);
            let b = other.eval_on_union(&union, row);
            if a != (b ^ complemented) {
                return false;
            }
        }
        true
    }

    fn eval_on_union(&self, union: &[VarId], row: usize) -> bool {
        let mut local_row = 0usize;
        for (pos, v) in self.support.iter().enumerate() {
            let union_pos = union.binary_search(v).expect("support subset of union");
            if (row >> union_pos) & 1 == 1 {
                local_row |= 1 << pos;
            }
        }
        self.value(local_row)
    }

    /// The rows of the on-set (minterm indices where the function is true).
    pub fn on_set(&self) -> Vec<usize> {
        (0..self.num_rows()).filter(|&r| self.value(r)).collect()
    }
}

impl std::fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TruthTable{{support: {:?}, on-set: ", self.support)?;
        write!(f, "{}/{} rows}}", self.count_ones(), self.num_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> Expr {
        Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(3)]),
        ])
    }

    #[test]
    fn truth_table_matches_direct_evaluation() {
        let f = mux();
        let tt = TruthTable::from_expr(&f);
        assert_eq!(tt.support(), &[1, 2, 3]);
        for row in 0..8usize {
            let lookup = |v: VarId| (row >> (v - 1)) & 1 == 1;
            assert_eq!(tt.value(row), f.eval_with(lookup));
        }
    }

    #[test]
    fn complement_detection() {
        let f = mux();
        let g = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::not(Expr::var(2))]),
            Expr::and(vec![Expr::not(Expr::var(1)), Expr::not(Expr::var(3))]),
        ]);
        let tf = TruthTable::from_expr(&f);
        let tg = TruthTable::from_expr(&g);
        assert!(tf.is_complement_of(&tg));
        assert!(!tf.is_equivalent_to(&tg));
        assert!(tf.is_equivalent_to(&tf));
    }

    #[test]
    fn complement_with_different_supports() {
        // f = x1 ∨ x2, g = ¬x1 ∧ ¬x2 ∧ (x3 ∨ ¬x3)  → still complements
        let f = Expr::or(vec![Expr::var(1), Expr::var(2)]);
        let g = Expr::and(vec![
            Expr::not(Expr::var(1)),
            Expr::not(Expr::var(2)),
            Expr::or(vec![Expr::var(3), Expr::not(Expr::var(3))]),
        ]);
        let tf = TruthTable::from_expr(&f);
        let tg = TruthTable::from_expr(&g);
        assert!(tf.is_complement_of(&tg));
    }

    #[test]
    fn non_complements_rejected() {
        let f = Expr::or(vec![Expr::var(1), Expr::var(2)]);
        let g = Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(2)]);
        assert!(!TruthTable::from_expr(&f).is_complement_of(&TruthTable::from_expr(&g)));
    }

    #[test]
    fn constant_detection() {
        let taut = Expr::or(vec![Expr::var(1), Expr::not(Expr::var(1))]);
        let tt = TruthTable::from_expr(&taut);
        assert_eq!(tt.as_const(), Some(true));
        let contradiction = Expr::and(vec![Expr::var(1), Expr::not(Expr::var(1))]);
        assert_eq!(
            TruthTable::from_expr(&contradiction).as_const(),
            Some(false)
        );
        assert_eq!(TruthTable::from_expr(&Expr::var(1)).as_const(), None);
    }

    #[test]
    fn count_ones_on_large_word_boundary() {
        // 7-variable parity: exactly half the 128 rows are true.
        let parity = Expr::xor((1..=7).map(Expr::var).collect());
        let tt = TruthTable::from_expr(&parity);
        assert_eq!(tt.count_ones(), 64);
        assert_eq!(tt.num_rows(), 128);
    }

    #[test]
    fn oversized_support_rejected() {
        let wide = Expr::or((1..=(MAX_SUPPORT as u32 + 1)).map(Expr::var).collect());
        assert!(TruthTable::try_from_expr(&wide).is_none());
    }

    #[test]
    fn explicit_support_allows_padding() {
        let f = Expr::var(2);
        let tt = TruthTable::try_from_expr_with_support(&f, &[1, 2, 3]).expect("fits");
        assert_eq!(tt.num_rows(), 8);
        assert_eq!(tt.count_ones(), 4);
    }
}
