//! Two-level minimisation and expression simplification.
//!
//! The paper simplifies every Boolean expression accepted by the
//! transformation before adding it to the circuit (Section III-A, "The
//! obtained Boolean expression is simplified before adoption in the final
//! circuit structure"). We implement Quine–McCluskey prime-implicant
//! generation with a greedy cover over the exact truth table, and pick the
//! cheaper of the minimised function and the minimised complement (returned
//! negated), which captures the common case where the off-set has a much
//! smaller cover than the on-set.

use crate::{Expr, TruthTable, VarId};

/// Supports larger than this skip exact two-level minimisation and fall back
/// to the structurally-folded input expression. Quine–McCluskey is exponential
/// in the support size; clause groups produced by Tseitin encodings are far
/// below this limit.
pub const MAX_MINIMIZE_SUPPORT: usize = 12;

/// A product term (cube) over a positional support: `care` marks the positions
/// that appear in the term and `values` their required polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Cube {
    care: u32,
    values: u32,
}

impl Cube {
    fn covers(&self, minterm: u32) -> bool {
        (minterm & self.care) == (self.values & self.care)
    }

    /// Attempts to merge two cubes differing in exactly one cared bit.
    fn merge(&self, other: &Cube) -> Option<Cube> {
        if self.care != other.care {
            return None;
        }
        let diff = (self.values ^ other.values) & self.care;
        if diff.count_ones() == 1 {
            Some(Cube {
                care: self.care & !diff,
                values: self.values & !diff,
            })
        } else {
            None
        }
    }
}

/// Computes the prime implicants of the on-set given as minterm indices over
/// `num_vars` positional variables.
fn prime_implicants(minterms: &[usize], num_vars: usize) -> Vec<Cube> {
    let full_care = if num_vars == 32 {
        u32::MAX
    } else {
        (1u32 << num_vars) - 1
    };
    let mut current: Vec<Cube> = minterms
        .iter()
        .map(|&m| Cube {
            care: full_care,
            values: m as u32,
        })
        .collect();
    current.sort_by_key(|c| (c.care, c.values));
    current.dedup();

    let mut primes = Vec::new();
    while !current.is_empty() {
        let mut merged_flags = vec![false; current.len()];
        let mut next = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                if let Some(m) = current[i].merge(&current[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.push(m);
                }
            }
        }
        for (i, cube) in current.iter().enumerate() {
            if !merged_flags[i] {
                primes.push(*cube);
            }
        }
        next.sort_by_key(|c| (c.care, c.values));
        next.dedup();
        current = next;
    }
    primes.sort_by_key(|c| (c.care, c.values));
    primes.dedup();
    primes
}

/// Greedy set cover of the minterms by prime implicants, preferring essential
/// primes first and then the prime covering the most uncovered minterms.
fn cover(minterms: &[usize], primes: &[Cube]) -> Vec<Cube> {
    let mut uncovered: Vec<u32> = minterms.iter().map(|&m| m as u32).collect();
    let mut chosen = Vec::new();

    // Essential primes: minterms covered by exactly one prime.
    let mut essential_idx: Vec<usize> = Vec::new();
    for &m in &uncovered {
        let covering: Vec<usize> = primes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.covers(m).then_some(i))
            .collect();
        if covering.len() == 1 && !essential_idx.contains(&covering[0]) {
            essential_idx.push(covering[0]);
        }
    }
    for &i in &essential_idx {
        chosen.push(primes[i]);
    }
    uncovered.retain(|&m| !chosen.iter().any(|c| c.covers(m)));

    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .max_by_key(|p| uncovered.iter().filter(|&&m| p.covers(m)).count())
            .copied()
            .expect("primes cover every minterm");
        chosen.push(best);
        uncovered.retain(|&m| !best.covers(m));
    }
    chosen
}

fn cube_to_expr(cube: &Cube, support: &[VarId]) -> Expr {
    let mut literals = Vec::new();
    for (pos, &var) in support.iter().enumerate() {
        if cube.care >> pos & 1 == 1 {
            literals.push(Expr::literal(var, cube.values >> pos & 1 == 1));
        }
    }
    Expr::and(literals)
}

/// Builds a minimal sum-of-products expression for the function described by
/// `table`.
///
/// Returns a constant expression when the function is constant.
pub fn minimize_sop(table: &TruthTable) -> Expr {
    if let Some(c) = table.as_const() {
        return Expr::constant(c);
    }
    let minterms = table.on_set();
    let primes = prime_implicants(&minterms, table.support().len());
    let cubes = cover(&minterms, &primes);
    Expr::or(
        cubes
            .iter()
            .map(|c| cube_to_expr(c, table.support()))
            .collect(),
    )
}

/// Simplifies a Boolean expression.
///
/// For supports of at most [`MAX_MINIMIZE_SUPPORT`] variables the result is an
/// exact two-level minimisation of either the function or its complement
/// (whichever is cheaper, the latter returned under a negation). Larger
/// supports are returned after structural folding only.
///
/// The result is always logically equivalent to the input.
pub fn simplify(expr: &Expr) -> Expr {
    let support = expr.support();
    if support.is_empty() {
        // Constant-valued expression: evaluate it.
        return Expr::constant(expr.eval_with(|_| false));
    }
    if support.len() > MAX_MINIMIZE_SUPPORT {
        return expr.clone();
    }
    let table = match TruthTable::try_from_expr(expr) {
        Some(t) => t,
        None => return expr.clone(),
    };
    if let Some(c) = table.as_const() {
        return Expr::constant(c);
    }
    let sop = minimize_sop(&table);
    let complement_table = match TruthTable::try_from_expr(&Expr::not(expr.clone())) {
        Some(t) => t,
        None => return sop,
    };
    let complement_sop = Expr::not(minimize_sop(&complement_table));
    let mut best = sop;
    if complement_sop.op_count() < best.op_count() {
        best = complement_sop;
    }
    if expr.op_count() < best.op_count() {
        best = expr.clone();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent(a: &Expr, b: &Expr) -> bool {
        let mut support = a.support();
        support.extend(b.support());
        support.sort_unstable();
        support.dedup();
        let ta = TruthTable::try_from_expr_with_support(a, &support).expect("fits");
        let tb = TruthTable::try_from_expr_with_support(b, &support).expect("fits");
        ta.is_equivalent_to(&tb)
    }

    #[test]
    fn minimizes_redundant_sop() {
        // a·b + a·¬b  →  a
        let e = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::and(vec![Expr::var(1), Expr::not(Expr::var(2))]),
        ]);
        let s = simplify(&e);
        assert!(equivalent(&e, &s));
        assert_eq!(s, Expr::var(1));
    }

    #[test]
    fn consensus_term_removed() {
        // a·b + ¬a·c + b·c  →  a·b + ¬a·c
        let e = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(3)]),
            Expr::and(vec![Expr::var(2), Expr::var(3)]),
        ]);
        let s = simplify(&e);
        assert!(equivalent(&e, &s));
        assert!(s.op_count() <= 5);
    }

    #[test]
    fn tautology_and_contradiction_become_constants() {
        let taut = Expr::or(vec![Expr::var(1), Expr::not(Expr::var(1))]);
        assert_eq!(simplify(&taut), Expr::TRUE);
        let contra = Expr::and(vec![Expr::var(1), Expr::not(Expr::var(1))]);
        assert_eq!(simplify(&contra), Expr::FALSE);
    }

    #[test]
    fn xor_is_preserved_semantically() {
        let e = Expr::xor(vec![Expr::var(1), Expr::var(2), Expr::var(3)]);
        let s = simplify(&e);
        assert!(equivalent(&e, &s));
    }

    #[test]
    fn complemented_cover_chosen_when_cheaper() {
        // ¬(a ∨ b ∨ c ∨ d) has a 1-term off-set cover; its on-set SOP needs 1 cube
        // too, so just verify equivalence and that we do not blow up.
        let e = Expr::not(Expr::or(vec![
            Expr::var(1),
            Expr::var(2),
            Expr::var(3),
            Expr::var(4),
        ]));
        let s = simplify(&e);
        assert!(equivalent(&e, &s));
        assert!(s.op_count() <= e.op_count());
    }

    #[test]
    fn wide_support_returned_unchanged() {
        let wide = Expr::or(
            (1..=(MAX_MINIMIZE_SUPPORT as u32 + 2))
                .map(Expr::var)
                .collect(),
        );
        assert_eq!(simplify(&wide), wide);
    }

    #[test]
    fn simplify_never_increases_ops() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2), Expr::var(3)]),
            Expr::and(vec![Expr::var(1), Expr::var(2), Expr::not(Expr::var(3))]),
            Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(4)]),
        ]);
        let s = simplify(&e);
        assert!(equivalent(&e, &s));
        assert!(s.op_count() <= e.op_count());
    }

    #[test]
    fn constant_expression_with_empty_support() {
        assert_eq!(simplify(&Expr::TRUE), Expr::TRUE);
        assert_eq!(simplify(&Expr::and(vec![])), Expr::TRUE);
        assert_eq!(simplify(&Expr::or(vec![])), Expr::FALSE);
    }

    #[test]
    fn prime_implicant_generation_matches_classic_example() {
        // Classic QM example: f(a,b,c,d) with on-set {4,8,10,11,12,15}
        // and don't-cares ignored → standard result has 3-4 cubes.
        let minterms = vec![4usize, 8, 10, 11, 12, 15];
        let primes = prime_implicants(&minterms, 4);
        let cubes = cover(&minterms, &primes);
        // Every minterm covered, no minterm outside the on-set covered twice
        // incorrectly (coverage check only — minimality asserted loosely).
        for &m in &minterms {
            assert!(cubes.iter().any(|c| c.covers(m as u32)));
        }
        assert!(cubes.len() <= 4);
    }
}
