//! Boolean expression AST.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a Boolean variable inside an [`Expr`].
///
/// The transformation algorithm uses the CNF variable index (1-based) as the
/// identifier so expressions and clauses talk about the same variables.
pub type VarId = u32;

/// A Boolean expression over variables identified by [`VarId`].
///
/// `And`, `Or` and `Xor` are n-ary to keep expressions produced by the
/// CNF-to-circuit transformation shallow.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A Boolean constant.
    Const(bool),
    /// A variable reference.
    Var(VarId),
    /// Logical negation.
    Not(Box<Expr>),
    /// n-ary conjunction. Empty conjunction is `true`.
    And(Vec<Expr>),
    /// n-ary disjunction. Empty disjunction is `false`.
    Or(Vec<Expr>),
    /// n-ary exclusive or. Empty XOR is `false`.
    Xor(Vec<Expr>),
}

impl Expr {
    /// The constant `true`.
    pub const TRUE: Expr = Expr::Const(true);
    /// The constant `false`.
    pub const FALSE: Expr = Expr::Const(false);

    /// Creates a variable reference.
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// Creates a constant.
    pub fn constant(value: bool) -> Expr {
        Expr::Const(value)
    }

    /// Creates the negation of `e`, flattening double negation.
    // A by-value constructor in the `and`/`or`/`xor` family, not `ops::Not`,
    // which would take `self` and break `Expr::not(..)` call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        match e {
            Expr::Const(b) => Expr::Const(!b),
            Expr::Not(inner) => *inner,
            other => Expr::Not(Box::new(other)),
        }
    }

    /// Creates an n-ary AND, flattening nested ANDs and constant-folding.
    pub fn and(operands: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(operands.len());
        for op in operands {
            match op {
                Expr::Const(true) => {}
                Expr::Const(false) => return Expr::FALSE,
                Expr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::TRUE,
            1 => flat.pop().expect("len checked"),
            _ => Expr::And(flat),
        }
    }

    /// Creates an n-ary OR, flattening nested ORs and constant-folding.
    pub fn or(operands: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(operands.len());
        for op in operands {
            match op {
                Expr::Const(false) => {}
                Expr::Const(true) => return Expr::TRUE,
                Expr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::FALSE,
            1 => flat.pop().expect("len checked"),
            _ => Expr::Or(flat),
        }
    }

    /// Creates an n-ary XOR, flattening nested XORs and constant-folding.
    pub fn xor(operands: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(operands.len());
        let mut parity = false;
        for op in operands {
            match op {
                Expr::Const(b) => parity ^= b,
                Expr::Xor(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        let base = match flat.len() {
            0 => Expr::FALSE,
            1 => flat.pop().expect("len checked"),
            _ => Expr::Xor(flat),
        };
        if parity {
            Expr::not(base)
        } else {
            base
        }
    }

    /// A literal: the variable `id` or its negation.
    pub fn literal(id: VarId, positive: bool) -> Expr {
        if positive {
            Expr::var(id)
        } else {
            Expr::not(Expr::var(id))
        }
    }

    /// Structural complement (`¬self`), without deep rewriting.
    pub fn complement(&self) -> Expr {
        Expr::not(self.clone())
    }

    /// Returns `Some(value)` when the expression is a constant.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            Expr::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// The sorted set of variables referenced by the expression.
    pub fn support(&self) -> Vec<VarId> {
        let mut set = BTreeSet::new();
        self.collect_support(&mut set);
        set.into_iter().collect()
    }

    fn collect_support(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Not(e) => e.collect_support(out),
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) => {
                for e in es {
                    e.collect_support(out);
                }
            }
        }
    }

    /// Evaluates the expression using a lookup function for variable values.
    pub fn eval_with<F: Fn(VarId) -> bool + Copy>(&self, lookup: F) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => lookup(*v),
            Expr::Not(e) => !e.eval_with(lookup),
            Expr::And(es) => es.iter().all(|e| e.eval_with(lookup)),
            Expr::Or(es) => es.iter().any(|e| e.eval_with(lookup)),
            Expr::Xor(es) => es.iter().fold(false, |acc, e| acc ^ e.eval_with(lookup)),
        }
    }

    /// Substitutes constants for some variables and constant-folds.
    pub fn assign<F: Fn(VarId) -> Option<bool> + Copy>(&self, lookup: F) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Var(v) => match lookup(*v) {
                Some(b) => Expr::Const(b),
                None => Expr::Var(*v),
            },
            Expr::Not(e) => Expr::not(e.assign(lookup)),
            Expr::And(es) => Expr::and(es.iter().map(|e| e.assign(lookup)).collect()),
            Expr::Or(es) => Expr::or(es.iter().map(|e| e.assign(lookup)).collect()),
            Expr::Xor(es) => Expr::xor(es.iter().map(|e| e.assign(lookup)).collect()),
        }
    }

    /// Number of 2-input gate equivalents needed to evaluate the expression
    /// tree naively (without sharing).
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(e) => 1 + e.op_count(),
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) => {
                (es.len() as u64).saturating_sub(1) + es.iter().map(Expr::op_count).sum::<u64>()
            }
        }
    }

    /// Depth of the expression tree (constants and variables have depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(e) => 1 + e.depth(),
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) => {
                1 + es.iter().map(Expr::depth).max().unwrap_or(0)
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, es: &[Expr], sep: &str) -> fmt::Result {
            write!(f, "(")?;
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    write!(f, " {sep} ")?;
                }
                write!(f, "{e:?}")?;
            }
            write!(f, ")")
        }
        match self {
            Expr::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
            Expr::Var(v) => write!(f, "x{v}"),
            Expr::Not(e) => write!(f, "¬{e:?}"),
            Expr::And(es) => join(f, es, "∧"),
            Expr::Or(es) => join(f, es, "∨"),
            Expr::Xor(es) => join(f, es, "⊕"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_constant_fold() {
        assert_eq!(Expr::and(vec![Expr::TRUE, Expr::var(1)]), Expr::var(1));
        assert_eq!(Expr::and(vec![Expr::FALSE, Expr::var(1)]), Expr::FALSE);
        assert_eq!(Expr::or(vec![Expr::TRUE, Expr::var(1)]), Expr::TRUE);
        assert_eq!(Expr::or(vec![Expr::FALSE, Expr::var(1)]), Expr::var(1));
        assert_eq!(Expr::not(Expr::not(Expr::var(2))), Expr::var(2));
        assert_eq!(Expr::xor(vec![Expr::TRUE, Expr::TRUE]), Expr::FALSE);
    }

    #[test]
    fn nary_constructors_flatten() {
        let e = Expr::and(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::var(3),
        ]);
        assert_eq!(e, Expr::And(vec![Expr::var(1), Expr::var(2), Expr::var(3)]));
    }

    #[test]
    fn support_is_sorted_and_unique() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::var(5), Expr::var(2)]),
            Expr::not(Expr::var(2)),
        ]);
        assert_eq!(e.support(), vec![2, 5]);
    }

    #[test]
    fn eval_mux_semantics() {
        // f = (s ∧ a) ∨ (¬s ∧ b)
        let f = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::and(vec![Expr::not(Expr::var(1)), Expr::var(3)]),
        ]);
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let lookup = |v: VarId| match v {
                        1 => s,
                        2 => a,
                        3 => b,
                        _ => unreachable!(),
                    };
                    assert_eq!(f.eval_with(lookup), if s { a } else { b });
                }
            }
        }
    }

    #[test]
    fn assign_partially_evaluates() {
        let f = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::var(3),
        ]);
        let g = f.assign(|v| if v == 1 { Some(false) } else { None });
        assert_eq!(g, Expr::var(3));
    }

    #[test]
    fn op_count_and_depth() {
        let f = Expr::or(vec![
            Expr::and(vec![Expr::var(1), Expr::var(2)]),
            Expr::not(Expr::var(3)),
        ]);
        assert_eq!(f.op_count(), 3);
        assert_eq!(f.depth(), 2);
        assert_eq!(Expr::var(1).op_count(), 0);
    }

    #[test]
    fn xor_parity_folding() {
        let e = Expr::xor(vec![Expr::var(1), Expr::TRUE]);
        assert_eq!(e, Expr::not(Expr::var(1)));
        let e = Expr::xor(vec![]);
        assert_eq!(e, Expr::FALSE);
    }
}
