//! Property-based tests for the Boolean algebra substrate.

use htsat_logic::{simplify, Expr, GateKind, Netlist, TruthTable, VarId};
use proptest::prelude::*;

/// Strategy for arbitrary expressions over variables 1..=max_var with bounded
/// depth.
fn arb_expr(max_var: u32, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (1..=max_var).prop_map(Expr::var),
        any::<bool>().prop_map(Expr::constant),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::or),
            prop::collection::vec(inner, 1..4).prop_map(Expr::xor),
        ]
    })
    .boxed()
}

fn lookup_from_bits(bits: &[bool]) -> impl Fn(VarId) -> bool + Copy + '_ {
    move |v: VarId| bits[(v - 1) as usize]
}

proptest! {
    #[test]
    fn simplify_preserves_semantics(e in arb_expr(5, 3), bits in prop::collection::vec(any::<bool>(), 5)) {
        let s = simplify::simplify(&e);
        prop_assert_eq!(e.eval_with(lookup_from_bits(&bits)), s.eval_with(lookup_from_bits(&bits)));
    }

    #[test]
    fn simplify_never_increases_op_count_for_small_support(e in arb_expr(4, 3)) {
        let s = simplify::simplify(&e);
        prop_assert!(s.op_count() <= e.op_count());
    }

    #[test]
    fn truth_table_matches_eval(e in arb_expr(5, 3), bits in prop::collection::vec(any::<bool>(), 5)) {
        let tt = TruthTable::try_from_expr_with_support(&e, &[1, 2, 3, 4, 5]).expect("small support");
        let mut row = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                row |= 1 << i;
            }
        }
        prop_assert_eq!(tt.value(row), e.eval_with(lookup_from_bits(&bits)));
    }

    #[test]
    fn expression_and_complement_are_complements(e in arb_expr(5, 3)) {
        let tt = TruthTable::from_expr(&e);
        let tc = TruthTable::from_expr(&e.complement());
        prop_assert!(tt.is_complement_of(&tc));
        prop_assert!(tc.is_complement_of(&tt));
    }

    #[test]
    fn netlist_matches_expression_evaluation(e in arb_expr(5, 3), bits in prop::collection::vec(any::<bool>(), 5)) {
        let mut nl = Netlist::new();
        let node = nl.add_expr(&e);
        let values = nl.evaluate(lookup_from_bits(&bits));
        prop_assert_eq!(values[node.index()], e.eval_with(lookup_from_bits(&bits)));
    }

    #[test]
    fn netlist_op_count_never_exceeds_tree_op_count(e in arb_expr(5, 4)) {
        // Hash-consing may only reduce (or match) the naive tree cost.
        let mut nl = Netlist::new();
        nl.add_expr(&e);
        prop_assert!(nl.op_count() <= e.op_count().max(1));
    }

    #[test]
    fn minimize_sop_is_exact(e in arb_expr(4, 3)) {
        let tt = TruthTable::from_expr(&e);
        let sop = simplify::minimize_sop(&tt);
        let tt_sop = TruthTable::try_from_expr_with_support(&sop, tt.support()).expect("fits");
        prop_assert!(tt.is_equivalent_to(&tt_sop));
    }

    #[test]
    fn gate_eval_matches_expr_constructors(
        kind in prop_oneof![Just(GateKind::And), Just(GateKind::Or), Just(GateKind::Xor)],
        inputs in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        let exprs: Vec<Expr> = inputs.iter().map(|&b| Expr::constant(b)).collect();
        let expr = match kind {
            GateKind::And => Expr::and(exprs),
            GateKind::Or => Expr::or(exprs),
            GateKind::Xor => Expr::xor(exprs),
            _ => unreachable!(),
        };
        prop_assert_eq!(kind.eval(&inputs), expr.eval_with(|_| false));
    }
}
