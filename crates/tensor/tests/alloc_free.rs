//! Proof that the fused kernel's inner loop performs **zero heap
//! allocations per row** — the acceptance criterion of the flat-kernel
//! rework, checked with a counting global allocator rather than a promise.
//! The loop runs with `htsat-obs` instrumentation (a span guard and a
//! counter per row) armed, so the proof covers the kernel *as instrumented
//! code observes it*, not a bare variant.
//!
//! Runs without the libtest harness (`harness = false` in `Cargo.toml`) so
//! no concurrent harness thread can allocate while the counter is armed.

use htsat_tensor::{FlatKernel, SoftCircuit, SoftGate};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    // A circuit with every gate type, shared fan-out and n-ary fan-ins.
    let mut c = SoftCircuit::new(4);
    let a = c.input(0);
    let b = c.input(1);
    let x = c.input(2);
    let y = c.input(3);
    let one = c.constant(1.0);
    let buf = c.gate(SoftGate::Buf, vec![a]);
    let not = c.gate(SoftGate::Not, vec![b]);
    let and = c.gate(SoftGate::And, vec![buf, not, x]);
    let or = c.gate(SoftGate::Or, vec![a, y, one]);
    let nand = c.gate(SoftGate::Nand, vec![b, x]);
    let nor = c.gate(SoftGate::Nor, vec![and, y]);
    let xor = c.gate(SoftGate::Xor, vec![or, nand, a]);
    let xnor = c.gate(SoftGate::Xnor, vec![nor, x]);
    c.constrain(and, 1.0);
    c.constrain(xor, 0.0);
    c.constrain(xnor, 1.0);

    let kernel = FlatKernel::compile(&c);
    let mut ws = kernel.workspace();
    let mut grad = vec![0.0f32; 4];
    let mut rows: Vec<[f32; 4]> = (0..256)
        .map(|i| {
            let f = i as f32;
            [f * 0.01 - 1.0, 1.5 - f * 0.02, f * 0.03, -f * 0.005]
        })
        .collect();

    // One closure = one set of instrumentation call sites, shared by the
    // warm-up and the armed loop (each `span!`/`counter!` expansion caches
    // its metric per call site, and only the first execution registers —
    // and allocates).
    let kernel_ref = &kernel;
    let step = move |row: &mut [f32; 4], ws: &mut _| -> f64 {
        let _span = htsat_obs::span!("alloc.gd_step");
        let loss = kernel_ref.fused_gd_step(row, 10.0, ws);
        htsat_obs::counter!("alloc.gd_rows").inc();
        loss
    };

    // Warm-up: everything that may lazily allocate does so here — including
    // the first execution of the instrumented step, which registers its
    // metrics in the global registry.
    let mut row = rows[0];
    step(&mut row, &mut ws);
    kernel.loss_and_grad(&[0.5, 0.5, 0.5, 0.5], &mut grad, &mut ws);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let mut total = 0.0f64;
    for _ in 0..8 {
        for row in rows.iter_mut() {
            total += step(row, &mut ws);
        }
    }
    TRACKING.store(false, Ordering::SeqCst);
    let counted = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(total.is_finite());
    assert_eq!(
        counted, 0,
        "fused GD inner loop (with instrumentation) allocated {counted} times over 2048 rows"
    );
    assert_eq!(htsat_obs::global().counter("alloc.gd_rows").get(), 2049);
    assert_eq!(htsat_obs::global().histogram("alloc.gd_step").count(), 2049);
    println!("test fused_gd_step_performs_zero_allocations_per_row ... ok (0 allocations over 2048 instrumented rows)");
}
