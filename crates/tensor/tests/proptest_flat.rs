//! Property tests: the flat fused kernel is bit-identical to the reference
//! `SoftCircuit` on random circuits.

use htsat_tensor::{ops, FlatKernel, SoftCircuit, SoftGate};
use proptest::prelude::*;

/// Deterministically builds a random-but-valid circuit from generated specs:
/// all input columns, two constants, then one gate per spec whose fan-in
/// indices are reduced modulo the nodes built so far (so topological order
/// holds by construction), then one output constraint per entry.
fn build_circuit(
    num_inputs: usize,
    specs: &[(u8, u64)],
    constraints: &[(u64, bool)],
) -> SoftCircuit {
    let mut c = SoftCircuit::new(num_inputs);
    for col in 0..num_inputs {
        c.input(col);
    }
    c.constant(0.0);
    c.constant(1.0);
    for &(kind, seed) in specs {
        let n = c.num_nodes() as u64;
        let pick = |s: u64| (s % n) as usize;
        let width = 1 + ((seed >> 32) % 3) as usize;
        let fanin: Vec<usize> = (0..width as u64)
            .map(|j| pick(seed.wrapping_mul(2 * j + 1).wrapping_add(j)))
            .collect();
        match kind % 8 {
            0 => c.gate(SoftGate::Buf, vec![pick(seed)]),
            1 => c.gate(SoftGate::Not, vec![pick(seed)]),
            2 => c.gate(SoftGate::And, fanin),
            3 => c.gate(SoftGate::Or, fanin),
            4 => c.gate(SoftGate::Nand, fanin),
            5 => c.gate(SoftGate::Nor, fanin),
            6 => c.gate(SoftGate::Xor, fanin),
            _ => c.gate(SoftGate::Xnor, fanin),
        };
    }
    for &(seed, target) in constraints {
        let node = (seed % c.num_nodes() as u64) as usize;
        c.constrain(node, if target { 1.0 } else { 0.0 });
    }
    c
}

fn arb_specs() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((any::<u8>(), any::<u64>()), 1..24)
}

fn arb_constraints() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((any::<u64>(), any::<bool>()), 1..6)
}

/// Probabilities in `[0, 1]` from generated integers.
fn arb_probs(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0u32..=1000, n)
        .prop_map(|vs| vs.into_iter().map(|v| v as f32 / 1000.0).collect())
}

/// Logits in `[-20, 20]` — wide enough to hit the sigmoid's saturated
/// region where the clamp matters.
fn arb_logits(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0u32..=4000, n)
        .prop_map(|vs| vs.into_iter().map(|v| v as f32 / 100.0 - 20.0).collect())
}

const NUM_INPUTS: usize = 4;

proptest! {
    #[test]
    fn flat_forward_matches_reference_bit_for_bit(
        specs in arb_specs(),
        constraints in arb_constraints(),
        inputs in arb_probs(NUM_INPUTS),
    ) {
        let circuit = build_circuit(NUM_INPUTS, &specs, &constraints);
        let kernel = FlatKernel::compile(&circuit);
        let mut ws = kernel.workspace();
        let mut ref_acts = Vec::new();
        circuit.forward_single(&inputs, &mut ref_acts);
        kernel.forward(&inputs, &mut ws);
        prop_assert_eq!(ws.activations(), ref_acts.as_slice());
    }

    #[test]
    fn flat_loss_and_grads_match_reference_bit_for_bit(
        specs in arb_specs(),
        constraints in arb_constraints(),
        inputs in arb_probs(NUM_INPUTS),
    ) {
        let circuit = build_circuit(NUM_INPUTS, &specs, &constraints);
        let kernel = FlatKernel::compile(&circuit);
        let mut ws = kernel.workspace();
        let mut ref_grad = vec![0.0f32; NUM_INPUTS];
        let mut flat_grad = vec![0.0f32; NUM_INPUTS];
        let ref_loss = circuit.loss_and_grad_single(&inputs, &mut ref_grad);
        let flat_loss = kernel.loss_and_grad(&inputs, &mut flat_grad, &mut ws);
        prop_assert_eq!(ref_loss.to_bits(), flat_loss.to_bits());
        prop_assert_eq!(ref_grad, flat_grad);
    }

    #[test]
    fn fused_step_matches_the_staged_reference_composition_bit_for_bit(
        specs in arb_specs(),
        constraints in arb_constraints(),
        logits in arb_logits(NUM_INPUTS),
    ) {
        let circuit = build_circuit(NUM_INPUTS, &specs, &constraints);
        let kernel = FlatKernel::compile(&circuit);
        let mut ws = kernel.workspace();
        let learning_rate = 10.0f32;

        // Staged reference: embed, loss+grad, chain rule, descend — the
        // sampler's KernelChoice::Reference path for one row.
        let probs: Vec<f32> = logits.iter().map(|&v| ops::embed_logit(v)).collect();
        let mut grad_p = vec![0.0f32; NUM_INPUTS];
        let ref_loss = circuit.loss_and_grad_single(&probs, &mut grad_p);
        let mut ref_logits = logits.clone();
        for ((v, &g), &p) in ref_logits.iter_mut().zip(grad_p.iter()).zip(probs.iter()) {
            let grad_v = g * ops::sigmoid_grad_from_output(p);
            *v -= learning_rate * grad_v;
        }

        // Fused: one kernel call.
        let mut fused_logits = logits.clone();
        let fused_loss = kernel.fused_gd_step(&mut fused_logits, learning_rate, &mut ws);

        prop_assert_eq!(ref_loss.to_bits(), fused_loss.to_bits());
        prop_assert_eq!(ref_logits, fused_logits);
    }
}
