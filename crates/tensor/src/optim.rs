//! Optimizers for the input logits.

use crate::BatchMatrix;

/// A first-order optimizer updating a matrix of parameters from a gradient of
/// the same shape.
pub trait Optimizer {
    /// Applies one update step: `params ← params - f(grads)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the shapes of `params` and `grads`
    /// differ.
    fn step(&mut self, params: &mut BatchMatrix, grads: &BatchMatrix);

    /// Resets any internal state (moments, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent, the optimizer used in the paper
/// (learning rate 10, five iterations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate γ.
    pub learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd { learning_rate }
    }
}

impl Default for Sgd {
    /// The paper's default learning rate of 10.
    fn default() -> Self {
        Sgd::new(10.0)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut BatchMatrix, grads: &BatchMatrix) {
        params.saxpy_neg(self.learning_rate, grads);
    }

    fn reset(&mut self) {}
}

/// Adam optimizer, provided as an extension for instances where plain SGD
/// converges slowly.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and standard
    /// moment-decay defaults (0.9, 0.999).
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut BatchMatrix, grads: &BatchMatrix) {
        assert_eq!(params.batch(), grads.batch(), "batch mismatch");
        assert_eq!(params.width(), grads.width(), "width mismatch");
        let n = params.as_slice().len();
        if self.m.len() != n {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let p = params.as_mut_slice();
        let g = grads.as_slice();
        for i in 0..n {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g[i] * g[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            p[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &BatchMatrix) -> BatchMatrix {
        // L = sum (p - 3)^2, dL/dp = 2(p - 3)
        let mut g = params.clone();
        g.map_inplace(|p| 2.0 * (p - 3.0));
        g
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut params = BatchMatrix::filled(2, 2, 0.0);
        let mut opt = Sgd::new(0.25);
        for _ in 0..100 {
            let g = quadratic_grad(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.as_slice().iter().all(|&p| (p - 3.0).abs() < 1e-3));
    }

    #[test]
    fn sgd_default_matches_paper_learning_rate() {
        assert_eq!(Sgd::default().learning_rate, 10.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = BatchMatrix::filled(1, 4, 0.0);
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let g = quadratic_grad(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.as_slice().iter().all(|&p| (p - 3.0).abs() < 1e-2));
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut params = BatchMatrix::filled(1, 2, 0.0);
        let mut opt = Adam::new(0.1);
        let g = quadratic_grad(&params);
        opt.step(&mut params, &g);
        opt.reset();
        // After reset the next step behaves like the first (no stale moments).
        let mut p2 = BatchMatrix::filled(1, 2, 0.0);
        let mut opt2 = Adam::new(0.1);
        let g2 = quadratic_grad(&p2);
        opt2.step(&mut p2, &g2);
        let mut p1 = BatchMatrix::filled(1, 2, 0.0);
        let g1 = quadratic_grad(&p1);
        opt.step(&mut p1, &g1);
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn adam_rejects_shape_mismatch() {
        let mut params = BatchMatrix::zeros(1, 2);
        let grads = BatchMatrix::zeros(1, 3);
        Adam::new(0.1).step(&mut params, &grads);
    }
}
