//! Allocation-free fused kernel over a flat, CSR-style circuit layout.
//!
//! [`SoftCircuit`] is the *reference* implementation: pointer-chasing
//! per-node `Vec`s, scratch vectors allocated per call — easy to audit,
//! slow to run. [`FlatKernel`] compiles a circuit once into four dense
//! arrays (opcodes, per-node payload, a CSR fan-in list with offsets, and
//! the constrained-output list) and executes forward, backward and the
//! sampler's whole gradient-descent step out of a caller-owned
//! [`Workspace`] — zero heap allocations per row.
//!
//! The kernel replicates the reference implementation *operation for
//! operation* (same `ops::` calls, same accumulation order, same skip
//! logic), so its losses and gradients are **bit-identical** to
//! [`SoftCircuit::loss_and_grad_single`] — property-tested in
//! `tests/proptest_flat.rs` and replayed over the generated corpus in CI.

use crate::circuit::{SoftCircuit, SoftGate};
use crate::ops;

/// Dense per-node instruction of the flat kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpCode {
    /// Read the input column stored in the payload.
    Input,
    /// Produce the constant stored (as `f32` bits) in the payload.
    Const,
    /// Identity.
    Buf,
    /// Soft NOT.
    Not,
    /// Soft AND.
    And,
    /// Soft OR.
    Or,
    /// Complemented soft AND.
    Nand,
    /// Complemented soft OR.
    Nor,
    /// Soft XOR.
    Xor,
    /// Complemented soft XOR.
    Xnor,
}

/// Reusable per-worker scratch state for [`FlatKernel`] execution.
///
/// A workspace owns every buffer a kernel invocation touches: the embedded
/// probabilities and input gradients of one batch row, the node activations
/// and node gradients, and the fan-in gather scratch. Build one with
/// [`FlatKernel::workspace`], then reuse it for every row a worker
/// processes — the kernels fully overwrite whatever they read, so a
/// workspace carries no state between rows. Executors thread workspaces
/// through `reduce_rows_with`, building one per worker per parallel region.
#[derive(Debug, Clone)]
pub struct Workspace {
    probs: Vec<f32>,
    grad_inputs: Vec<f32>,
    acts: Vec<f32>,
    node_grad: Vec<f32>,
    fanin_p: Vec<f32>,
    fanin_g: Vec<f32>,
}

impl Workspace {
    /// The node activations written by the last forward pass.
    pub fn activations(&self) -> &[f32] {
        &self.acts
    }

    /// Total bytes of scratch this workspace owns.
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<f32>()
            * (self.probs.capacity()
                + self.grad_inputs.capacity()
                + self.acts.capacity()
                + self.node_grad.capacity()
                + self.fanin_p.capacity()
                + self.fanin_g.capacity())
    }
}

/// A [`SoftCircuit`] compiled into a flat, cache-friendly layout.
///
/// Node `i`'s fan-in lives at `fanin[offsets[i]..offsets[i + 1]]` (CSR), its
/// instruction in `opcodes[i]`, and its immediate operand (input column or
/// constant bits) in `payload[i]`. Compilation is cheap and infallible;
/// execution never allocates — all scratch lives in a [`Workspace`].
#[derive(Debug, Clone)]
pub struct FlatKernel {
    opcodes: Vec<OpCode>,
    payload: Vec<u32>,
    fanin: Vec<u32>,
    offsets: Vec<u32>,
    outputs: Vec<(u32, f32)>,
    num_inputs: usize,
    max_fanin: usize,
}

impl FlatKernel {
    /// Compiles a circuit into the flat layout.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than `u32::MAX` nodes or fan-in edges
    /// (far beyond any transformable CNF).
    pub fn compile(circuit: &SoftCircuit) -> FlatKernel {
        let n = circuit.num_nodes();
        let mut opcodes = Vec::with_capacity(n);
        let mut payload = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut fanin = Vec::new();
        offsets.push(0u32);
        for node in circuit.nodes() {
            let (op, pay) = match node.gate {
                SoftGate::Input(col) => (OpCode::Input, u32::try_from(col).expect("column fits")),
                SoftGate::Const(v) => (OpCode::Const, v.to_bits()),
                SoftGate::Buf => (OpCode::Buf, 0),
                SoftGate::Not => (OpCode::Not, 0),
                SoftGate::And => (OpCode::And, 0),
                SoftGate::Or => (OpCode::Or, 0),
                SoftGate::Nand => (OpCode::Nand, 0),
                SoftGate::Nor => (OpCode::Nor, 0),
                SoftGate::Xor => (OpCode::Xor, 0),
                SoftGate::Xnor => (OpCode::Xnor, 0),
            };
            opcodes.push(op);
            payload.push(pay);
            for &f in &node.fanin {
                fanin.push(u32::try_from(f).expect("node index fits"));
            }
            offsets.push(u32::try_from(fanin.len()).expect("edge count fits"));
        }
        let outputs = circuit
            .outputs()
            .iter()
            .map(|&(node, target)| (u32::try_from(node).expect("node index fits"), target))
            .collect();
        FlatKernel {
            opcodes,
            payload,
            fanin,
            offsets,
            outputs,
            num_inputs: circuit.num_inputs(),
            max_fanin: circuit.max_fanin(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.opcodes.len()
    }

    /// Number of input columns the kernel reads.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The widest fan-in of any node.
    pub fn max_fanin(&self) -> usize {
        self.max_fanin
    }

    /// Number of constrained outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Builds a workspace sized for this kernel.
    pub fn workspace(&self) -> Workspace {
        Workspace {
            probs: vec![0.0; self.num_inputs],
            grad_inputs: vec![0.0; self.num_inputs],
            acts: vec![0.0; self.opcodes.len()],
            node_grad: vec![0.0; self.opcodes.len()],
            fanin_p: vec![0.0; self.max_fanin],
            fanin_g: vec![0.0; self.max_fanin],
        }
    }

    /// Debug-build guard: a workspace sized for a *different* kernel would
    /// not panic on its own (the fan-in gather zips against the scratch
    /// length and would silently truncate) — catch the misuse loudly.
    fn check_workspace(&self, ws: &Workspace) {
        debug_assert_eq!(
            ws.acts.len(),
            self.opcodes.len(),
            "workspace/kernel mismatch"
        );
        debug_assert_eq!(
            ws.node_grad.len(),
            self.opcodes.len(),
            "workspace/kernel mismatch"
        );
        debug_assert_eq!(ws.probs.len(), self.num_inputs, "workspace/kernel mismatch");
        debug_assert_eq!(
            ws.grad_inputs.len(),
            self.num_inputs,
            "workspace/kernel mismatch"
        );
        debug_assert!(
            ws.fanin_p.len() >= self.max_fanin,
            "workspace/kernel mismatch"
        );
        debug_assert!(
            ws.fanin_g.len() >= self.max_fanin,
            "workspace/kernel mismatch"
        );
    }

    /// Forward pass for one batch row; activations land in
    /// [`Workspace::activations`].
    ///
    /// Matches [`SoftCircuit::forward_single`] bit for bit.
    pub fn forward(&self, inputs: &[f32], ws: &mut Workspace) {
        self.check_workspace(ws);
        self.forward_into(inputs, &mut ws.acts, &mut ws.fanin_p);
    }

    /// Loss and input gradient for one batch row, matching
    /// [`SoftCircuit::loss_and_grad_single`] bit for bit.
    ///
    /// `grad_inputs` (length `num_inputs`) receives `∂L/∂p` per input
    /// column; the return value is the summed ℓ2 loss over the constrained
    /// outputs. Allocation-free: all scratch lives in `ws`.
    pub fn loss_and_grad(
        &self,
        inputs: &[f32],
        grad_inputs: &mut [f32],
        ws: &mut Workspace,
    ) -> f64 {
        self.check_workspace(ws);
        let Workspace {
            acts,
            node_grad,
            fanin_p,
            fanin_g,
            ..
        } = ws;
        self.forward_into(inputs, acts, fanin_p);
        self.backward_into(acts, node_grad, grad_inputs, fanin_p, fanin_g)
    }

    /// The sampler's fused gradient-descent step for one batch row of
    /// logits, in a single allocation-free pass:
    ///
    /// 1. sigmoid-embed the logits into probabilities
    ///    ([`ops::embed_logit`] — clamped so saturated logits stay
    ///    differentiable),
    /// 2. forward through the circuit,
    /// 3. backward from the ℓ2 loss to the input gradients,
    /// 4. chain rule through the sigmoid and descend:
    ///    `v ← v − γ · ∂L/∂p · σ'(p)`, written straight back into `logits`.
    ///
    /// Returns the row's loss. With `learning_rate == 0` this is a pure
    /// loss evaluation (the logits are left untouched), which is what the
    /// finite-difference tests use.
    pub fn fused_gd_step(&self, logits: &mut [f32], learning_rate: f32, ws: &mut Workspace) -> f64 {
        self.check_workspace(ws);
        let Workspace {
            probs,
            grad_inputs,
            acts,
            node_grad,
            fanin_p,
            fanin_g,
        } = ws;
        for (p, &v) in probs.iter_mut().zip(logits.iter()) {
            *p = ops::embed_logit(v);
        }
        self.forward_into(probs, acts, fanin_p);
        let loss = self.backward_into(acts, node_grad, grad_inputs, fanin_p, fanin_g);
        for ((v, &g), &p) in logits.iter_mut().zip(grad_inputs.iter()).zip(probs.iter()) {
            *v -= learning_rate * (g * ops::sigmoid_grad_from_output(p));
        }
        loss
    }

    /// Forward pass writing every node activation into `acts`.
    ///
    /// Replicates `SoftCircuit::forward_single` exactly: gather the fan-in
    /// activations into scratch, apply the same `ops::` rule. The slice
    /// lengths are pinned to the node count up front so the optimiser can
    /// hoist the per-node bounds checks out of the loop.
    fn forward_into(&self, inputs: &[f32], acts: &mut [f32], fanin_buf: &mut [f32]) {
        let n = self.opcodes.len();
        let opcodes = &self.opcodes[..n];
        let payload = &self.payload[..n];
        let offsets = &self.offsets[..n + 1];
        let acts = &mut acts[..n];
        let mut lo = 0usize;
        for i in 0..n {
            let hi = offsets[i + 1] as usize;
            let k = hi - lo;
            let op = opcodes[i];
            // Fast path for the dominant shape: a binary gate. Skips the
            // gather loop and the generic n-ary folds. Bit-identical to the
            // generic rules because `1.0 * x == x` and `xor2(0, p) == p`
            // exactly in IEEE arithmetic.
            if k == 2 && !matches!(op, OpCode::Input | OpCode::Const) {
                let p0 = acts[self.fanin[lo] as usize];
                let p1 = acts[self.fanin[lo + 1] as usize];
                acts[i] = match op {
                    OpCode::Buf => p0,
                    OpCode::Not => ops::not(p0),
                    OpCode::And => p0 * p1,
                    OpCode::Or => 1.0 - (1.0 - p0) * (1.0 - p1),
                    OpCode::Nand => ops::not(p0 * p1),
                    OpCode::Nor => ops::not(1.0 - (1.0 - p0) * (1.0 - p1)),
                    OpCode::Xor => ops::xor2(p0, p1),
                    OpCode::Xnor => 1.0 - ops::xor2(p0, p1),
                    OpCode::Input | OpCode::Const => unreachable!("excluded above"),
                };
                lo = hi;
                continue;
            }
            for (slot, &f) in fanin_buf.iter_mut().zip(&self.fanin[lo..hi]) {
                *slot = acts[f as usize];
            }
            let ps = &fanin_buf[..k];
            acts[i] = match op {
                OpCode::Input => inputs[payload[i] as usize],
                OpCode::Const => f32::from_bits(payload[i]),
                OpCode::Buf => ps[0],
                OpCode::Not => ops::not(ps[0]),
                OpCode::And => ops::and(ps),
                OpCode::Or => ops::or(ps),
                OpCode::Nand => ops::not(ops::and(ps)),
                OpCode::Nor => ops::not(ops::or(ps)),
                OpCode::Xor => ops::xor(ps),
                OpCode::Xnor => ops::xnor(ps),
            };
            lo = hi;
        }
    }

    /// Reverse pass from the constrained outputs to `grad_inputs`, returning
    /// the summed ℓ2 loss.
    ///
    /// Replicates the reverse sweep of `SoftCircuit::loss_and_grad_single`
    /// exactly: same zero-gradient skip, same special cases, same
    /// prefix/suffix gradient rules, same accumulation order.
    fn backward_into(
        &self,
        acts: &[f32],
        node_grad: &mut [f32],
        grad_inputs: &mut [f32],
        fanin_p: &mut [f32],
        fanin_g: &mut [f32],
    ) -> f64 {
        node_grad.fill(0.0);
        let mut loss = 0.0f64;
        for &(node, target) in &self.outputs {
            let (l, g) = ops::l2_loss_and_grad(acts[node as usize], target);
            loss += l as f64;
            node_grad[node as usize] += g;
        }
        for g in grad_inputs.iter_mut() {
            *g = 0.0;
        }
        let n = self.opcodes.len();
        let opcodes = &self.opcodes[..n];
        let payload = &self.payload[..n];
        let offsets = &self.offsets[..n + 1];
        let node_grad = &mut node_grad[..n];
        for i in (0..n).rev() {
            let g = node_grad[i];
            if g == 0.0 {
                continue;
            }
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            let k = hi - lo;
            match opcodes[i] {
                OpCode::Input => {
                    grad_inputs[payload[i] as usize] += g;
                    continue;
                }
                OpCode::Const => continue,
                OpCode::Buf => {
                    node_grad[self.fanin[lo] as usize] += g;
                    continue;
                }
                OpCode::Not => {
                    node_grad[self.fanin[lo] as usize] -= g;
                    continue;
                }
                _ => {}
            }
            // Fast path for binary gates: the per-input partials reduce to
            // closed forms, so the gather and the generic prefix/suffix
            // passes are skipped. Bit-identical to the generic rules (the
            // generic paths multiply the same factors by exactly 1.0).
            if k == 2 {
                let f0 = self.fanin[lo] as usize;
                let f1 = self.fanin[lo + 1] as usize;
                let (p0, p1) = (acts[f0], acts[f1]);
                let (g0, g1, sign) = match opcodes[i] {
                    OpCode::And => (p1, p0, 1.0f32),
                    OpCode::Nand => (p1, p0, -1.0),
                    OpCode::Or => (1.0 - p1, 1.0 - p0, 1.0),
                    OpCode::Nor => (1.0 - p1, 1.0 - p0, -1.0),
                    OpCode::Xor => (1.0 - 2.0 * p1, 1.0 - 2.0 * p0, 1.0),
                    OpCode::Xnor => (1.0 - 2.0 * p1, 1.0 - 2.0 * p0, -1.0),
                    _ => unreachable!("leaf and unary gates handled above"),
                };
                node_grad[f0] += sign * g * g0;
                node_grad[f1] += sign * g * g1;
                continue;
            }
            for (slot, &f) in fanin_p.iter_mut().zip(&self.fanin[lo..hi]) {
                *slot = acts[f as usize];
            }
            let ps = &fanin_p[..k];
            let gs = &mut fanin_g[..k];
            let sign = match opcodes[i] {
                OpCode::And => {
                    ops::and_grad(ps, gs);
                    1.0
                }
                OpCode::Nand => {
                    ops::and_grad(ps, gs);
                    -1.0
                }
                OpCode::Or => {
                    ops::or_grad(ps, gs);
                    1.0
                }
                OpCode::Nor => {
                    ops::or_grad(ps, gs);
                    -1.0
                }
                OpCode::Xor => {
                    ops::xor_grad(ps, gs);
                    1.0
                }
                OpCode::Xnor => {
                    ops::xor_grad(ps, gs);
                    -1.0
                }
                _ => unreachable!("leaf and unary gates handled above"),
            };
            for (&f, &gf) in self.fanin[lo..hi].iter().zip(gs.iter()) {
                node_grad[f as usize] += sign * g * gf;
            }
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchMatrix;

    /// A circuit exercising every gate type, every leaf type, and shared
    /// fan-out.
    fn all_gates_circuit() -> SoftCircuit {
        let mut c = SoftCircuit::new(4);
        let a = c.input(0);
        let b = c.input(1);
        let x = c.input(2);
        let y = c.input(3);
        let one = c.constant(1.0);
        let buf = c.gate(SoftGate::Buf, vec![a]);
        let not = c.gate(SoftGate::Not, vec![b]);
        let and = c.gate(SoftGate::And, vec![buf, not, x]);
        let or = c.gate(SoftGate::Or, vec![a, y, one]);
        let nand = c.gate(SoftGate::Nand, vec![b, x]);
        let nor = c.gate(SoftGate::Nor, vec![and, y]);
        let xor = c.gate(SoftGate::Xor, vec![or, nand, a]);
        let xnor = c.gate(SoftGate::Xnor, vec![nor, x]);
        c.constrain(and, 1.0);
        c.constrain(xor, 0.0);
        c.constrain(xnor, 1.0);
        c
    }

    #[test]
    fn flat_forward_matches_reference_bit_for_bit() {
        let c = all_gates_circuit();
        let kernel = FlatKernel::compile(&c);
        let mut ws = kernel.workspace();
        let mut ref_acts = Vec::new();
        let inputs = [0.3f32, 0.8, 0.1, 0.6];
        c.forward_single(&inputs, &mut ref_acts);
        kernel.forward(&inputs, &mut ws);
        assert_eq!(ws.activations(), ref_acts.as_slice());
    }

    #[test]
    fn flat_loss_and_grad_match_reference_bit_for_bit() {
        let c = all_gates_circuit();
        let kernel = FlatKernel::compile(&c);
        let mut ws = kernel.workspace();
        let inputs = [0.25f32, 0.9, 0.45, 0.7];
        let mut ref_grad = vec![0.0f32; 4];
        let mut flat_grad = vec![0.0f32; 4];
        let ref_loss = c.loss_and_grad_single(&inputs, &mut ref_grad);
        let flat_loss = kernel.loss_and_grad(&inputs, &mut flat_grad, &mut ws);
        assert_eq!(ref_loss.to_bits(), flat_loss.to_bits());
        assert_eq!(ref_grad, flat_grad);
    }

    #[test]
    fn workspace_carries_no_state_between_rows() {
        let c = all_gates_circuit();
        let kernel = FlatKernel::compile(&c);
        let mut fresh = kernel.workspace();
        let mut reused = kernel.workspace();
        let rows = BatchMatrix::from_fn(6, 4, |b, w| ((b * 7 + w * 3) % 10) as f32 / 10.0);
        let mut grad_fresh = vec![0.0f32; 4];
        let mut grad_reused = vec![0.0f32; 4];
        for b in 0..rows.batch() {
            let mut one_shot = kernel.workspace();
            let loss_fresh = kernel.loss_and_grad(rows.row(b), &mut grad_fresh, &mut one_shot);
            let loss_reused = kernel.loss_and_grad(rows.row(b), &mut grad_reused, &mut reused);
            assert_eq!(loss_fresh.to_bits(), loss_reused.to_bits(), "row {b}");
            assert_eq!(grad_fresh, grad_reused, "row {b}");
        }
        // Fused steps likewise: interleaving rows never changes a result.
        let mut row_a = [0.5f32, -1.0, 2.0, 0.0];
        let mut row_b = row_a;
        kernel.fused_gd_step(&mut [9.0, -9.0, 0.1, 3.0], 10.0, &mut reused);
        kernel.fused_gd_step(&mut row_a, 10.0, &mut reused);
        kernel.fused_gd_step(&mut row_b, 10.0, &mut fresh);
        assert_eq!(row_a, row_b);
    }

    #[test]
    fn fused_gradient_matches_finite_difference_for_every_gate_type() {
        let c = all_gates_circuit();
        let kernel = FlatKernel::compile(&c);
        let mut ws = kernel.workspace();
        let logits = [0.4f32, -0.8, 0.2, 1.1];
        // A zero learning rate makes the fused step a pure loss evaluation;
        // a unit learning rate makes `v_before - v_after` the gradient.
        let loss_at = |v: &[f32], ws: &mut Workspace| {
            let mut row = v.to_vec();
            kernel.fused_gd_step(&mut row, 0.0, ws)
        };
        let base_loss = loss_at(&logits, &mut ws);
        assert!(base_loss > 0.0);
        let mut stepped = logits;
        kernel.fused_gd_step(&mut stepped, 1.0, &mut ws);
        for i in 0..logits.len() {
            let grad = f64::from(logits[i] - stepped[i]);
            let h = 1e-3f32;
            let mut plus = logits;
            plus[i] += h;
            let mut minus = logits;
            minus[i] -= h;
            let fd = (loss_at(&plus, &mut ws) - loss_at(&minus, &mut ws)) / (2.0 * f64::from(h));
            assert!(
                (grad - fd).abs() < 1e-2,
                "input {i}: fused {grad} vs finite-difference {fd}"
            );
        }
    }

    #[test]
    fn saturated_logits_keep_flowing_gradient() {
        // A single buffered input constrained to 0. At v = 100 the plain
        // sigmoid saturates to exactly 1.0 and σ' = 0 — without the clamp
        // the logit would be stuck forever. The embedding pins p at
        // 1 - PROB_EPS, so the fused step still descends.
        let mut c = SoftCircuit::new(1);
        let a = c.input(0);
        let buf = c.gate(SoftGate::Buf, vec![a]);
        c.constrain(buf, 0.0);
        let kernel = FlatKernel::compile(&c);
        let mut ws = kernel.workspace();
        let mut row = [100.0f32];
        let loss = kernel.fused_gd_step(&mut row, 1e7, &mut ws);
        assert!(loss > 0.9, "saturated wrong logit should have ~unit loss");
        assert!(
            row[0] < 100.0,
            "clamped embedding must leave a usable gradient, got {}",
            row[0]
        );
    }

    #[test]
    fn kernel_shape_accessors_mirror_the_circuit() {
        let c = all_gates_circuit();
        let kernel = FlatKernel::compile(&c);
        assert_eq!(kernel.num_nodes(), c.num_nodes());
        assert_eq!(kernel.num_inputs(), c.num_inputs());
        assert_eq!(kernel.max_fanin(), c.max_fanin());
        assert_eq!(kernel.num_outputs(), c.outputs().len());
        assert!(kernel.workspace().bytes() > 0);
    }

    #[test]
    fn empty_circuit_compiles_and_runs() {
        let c = SoftCircuit::new(0);
        let kernel = FlatKernel::compile(&c);
        let mut ws = kernel.workspace();
        assert_eq!(kernel.loss_and_grad(&[], &mut [], &mut ws), 0.0);
        assert_eq!(kernel.fused_gd_step(&mut [], 10.0, &mut ws), 0.0);
    }
}
