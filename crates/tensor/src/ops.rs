//! Probabilistic (soft) logic operations and their derivatives.
//!
//! These are the scalar rules of the paper's Table I, generalised to n-ary
//! gates. Probabilities are `f32` values in `[0, 1]`; a gate's output is the
//! probability that the gate evaluates to 1 given independent inputs.
//!
//! | Operator | Output | Derivative w.r.t. input `i` |
//! |---|---|---|
//! | NOT  | `1 - p`                  | `-1` |
//! | AND  | `∏ pᵢ`                   | `∏_{j≠i} pⱼ` |
//! | OR   | `1 - ∏ (1-pᵢ)`           | `∏_{j≠i} (1-pⱼ)` |
//! | XOR  | pairwise `a+b-2ab` fold  | chain rule over the fold |
//! | XNOR | `1 - XOR`                | negated XOR derivative |

/// Logistic sigmoid, the paper's continuous embedding of input logits into
/// probabilities.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its output `s`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Soft NOT.
#[inline]
pub fn not(p: f32) -> f32 {
    1.0 - p
}

/// Soft n-ary AND: the product of the input probabilities.
pub fn and(ps: &[f32]) -> f32 {
    ps.iter().product()
}

/// Soft n-ary OR: `1 - ∏ (1 - pᵢ)`.
pub fn or(ps: &[f32]) -> f32 {
    1.0 - ps.iter().map(|&p| 1.0 - p).product::<f32>()
}

/// Soft 2-input XOR: `a + b - 2ab` (equivalently `a(1-b) + b(1-a)`).
#[inline]
pub fn xor2(a: f32, b: f32) -> f32 {
    a + b - 2.0 * a * b
}

/// Soft n-ary XOR, folded pairwise. The empty XOR is 0.
pub fn xor(ps: &[f32]) -> f32 {
    ps.iter().fold(0.0, |acc, &p| xor2(acc, p))
}

/// Soft n-ary XNOR.
pub fn xnor(ps: &[f32]) -> f32 {
    1.0 - xor(ps)
}

/// Gradient of the soft AND with respect to each input: `∏_{j≠i} pⱼ`.
///
/// Uses prefix/suffix products so inputs equal to zero are handled exactly.
/// Writes into `out`, which must have the same length as `ps`.
///
/// # Panics
///
/// Panics if `out.len() != ps.len()`.
pub fn and_grad(ps: &[f32], out: &mut [f32]) {
    assert_eq!(ps.len(), out.len(), "gradient buffer length mismatch");
    let n = ps.len();
    if n == 0 {
        return;
    }
    // prefix[i] = product of ps[..i]; computed into out to avoid allocation.
    let mut prefix = 1.0f32;
    for i in 0..n {
        out[i] = prefix;
        prefix *= ps[i];
    }
    let mut suffix = 1.0f32;
    for i in (0..n).rev() {
        out[i] *= suffix;
        suffix *= ps[i];
    }
}

/// Gradient of the soft OR with respect to each input: `∏_{j≠i} (1 - pⱼ)`.
///
/// # Panics
///
/// Panics if `out.len() != ps.len()`.
pub fn or_grad(ps: &[f32], out: &mut [f32]) {
    assert_eq!(ps.len(), out.len(), "gradient buffer length mismatch");
    let n = ps.len();
    if n == 0 {
        return;
    }
    let mut prefix = 1.0f32;
    for i in 0..n {
        out[i] = prefix;
        prefix *= 1.0 - ps[i];
    }
    let mut suffix = 1.0f32;
    for i in (0..n).rev() {
        out[i] *= suffix;
        suffix *= 1.0 - ps[i];
    }
}

/// Gradient of the folded n-ary soft XOR with respect to each input.
///
/// For the pairwise fold `acc_{k} = xor2(acc_{k-1}, p_k)`,
/// `∂out/∂p_i = (1 - 2·acc_{i-1}) · ∏_{j>i} (1 - 2·p_j)`.
///
/// # Panics
///
/// Panics if `out.len() != ps.len()`.
pub fn xor_grad(ps: &[f32], out: &mut [f32]) {
    assert_eq!(ps.len(), out.len(), "gradient buffer length mismatch");
    let n = ps.len();
    if n == 0 {
        return;
    }
    // Forward accumulator values before each input is folded in.
    let mut acc = 0.0f32;
    for i in 0..n {
        out[i] = 1.0 - 2.0 * acc;
        acc = xor2(acc, ps[i]);
    }
    // Multiply by the downstream fold factors.
    let mut downstream = 1.0f32;
    for i in (0..n).rev() {
        out[i] *= downstream;
        downstream *= 1.0 - 2.0 * ps[i];
    }
}

/// Squared-error loss `(y - t)²` and its derivative `2(y - t)` with respect to
/// the prediction `y`.
#[inline]
pub fn l2_loss_and_grad(y: f32, target: f32) -> (f32, f32) {
    let diff = y - target;
    (diff * diff, 2.0 * diff)
}

/// Clamps a probability to the open interval `(eps, 1-eps)` to keep gradients
/// finite.
#[inline]
pub fn clamp_prob(p: f32, eps: f32) -> f32 {
    p.clamp(eps, 1.0 - eps)
}

/// The clamp width used by [`embed_logit`]: probabilities produced from
/// logits stay inside `(PROB_EPS, 1 - PROB_EPS)`.
pub const PROB_EPS: f32 = 1e-6;

/// The sampler's sigmoid embedding of a logit into a probability:
/// `clamp_prob(sigmoid(v), PROB_EPS)`.
///
/// An `f32` sigmoid saturates to exactly `0.0` or `1.0` once `|v| ≳ 17`,
/// where `sigmoid_grad_from_output` returns `0` and gradient descent can
/// never pull the logit back — the clamp keeps saturated logits
/// differentiable, as the paper's continuous relaxation intends.
#[inline]
pub fn embed_logit(v: f32) -> f32 {
    clamp_prob(sigmoid(v), PROB_EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff<F: Fn(&[f32]) -> f32>(f: F, ps: &[f32], i: usize) -> f32 {
        let h = 1e-3f32;
        let mut plus = ps.to_vec();
        plus[i] += h;
        let mut minus = ps.to_vec();
        minus[i] -= h;
        (f(&plus) - f(&minus)) / (2.0 * h)
    }

    #[test]
    fn gate_outputs_match_boolean_corners() {
        assert_eq!(and(&[1.0, 1.0, 1.0]), 1.0);
        assert_eq!(and(&[1.0, 0.0]), 0.0);
        assert_eq!(or(&[0.0, 0.0]), 0.0);
        assert_eq!(or(&[0.0, 1.0]), 1.0);
        assert_eq!(xor(&[1.0, 0.0]), 1.0);
        assert_eq!(xor(&[1.0, 1.0]), 0.0);
        assert_eq!(xnor(&[1.0, 1.0]), 1.0);
        assert_eq!(not(0.0), 1.0);
    }

    #[test]
    fn outputs_stay_in_unit_interval() {
        let ps = [0.3, 0.7, 0.9, 0.1];
        for f in [and, or, xor, xnor] {
            let v = f(&ps);
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn and_grad_matches_finite_difference() {
        let ps = [0.3f32, 0.8, 0.5];
        let mut g = vec![0.0; 3];
        and_grad(&ps, &mut g);
        for (i, &gi) in g.iter().enumerate() {
            let fd = finite_diff(and, &ps, i);
            assert!((gi - fd).abs() < 1e-2, "i={i}: {gi} vs {fd}");
        }
    }

    #[test]
    fn or_grad_matches_finite_difference() {
        let ps = [0.3f32, 0.8, 0.5];
        let mut g = vec![0.0; 3];
        or_grad(&ps, &mut g);
        for (i, &gi) in g.iter().enumerate() {
            let fd = finite_diff(or, &ps, i);
            assert!((gi - fd).abs() < 1e-2, "i={i}: {gi} vs {fd}");
        }
    }

    #[test]
    fn xor_grad_matches_finite_difference() {
        let ps = [0.3f32, 0.8, 0.5, 0.9];
        let mut g = vec![0.0; 4];
        xor_grad(&ps, &mut g);
        for (i, &gi) in g.iter().enumerate() {
            let fd = finite_diff(xor, &ps, i);
            assert!((gi - fd).abs() < 1e-2, "i={i}: {gi} vs {fd}");
        }
    }

    #[test]
    fn and_grad_handles_zero_inputs_exactly() {
        let ps = [0.0f32, 0.5, 0.0];
        let mut g = vec![0.0; 3];
        and_grad(&ps, &mut g);
        // ∂/∂p1 = p2*p3 = 0, ∂/∂p2 = 0, ∂/∂p3 = 0 — but p2's partial is 0*0=0.
        assert_eq!(g[0], 0.0);
        assert_eq!(g[1], 0.0);
        assert_eq!(g[2], 0.0);
        let ps = [0.0f32, 0.5];
        let mut g = vec![0.0; 2];
        and_grad(&ps, &mut g);
        assert_eq!(g[0], 0.5);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn table_i_two_input_derivatives() {
        // The paper's Table I lists ∂/∂P1 = P2 for AND and OR (with the OR
        // derivative being the complement product), and 1-2P2 for XOR.
        let (p1, p2) = (0.4f32, 0.7f32);
        let mut g = vec![0.0; 2];
        and_grad(&[p1, p2], &mut g);
        assert!((g[0] - p2).abs() < 1e-6);
        or_grad(&[p1, p2], &mut g);
        assert!((g[0] - (1.0 - p2)).abs() < 1e-6);
        xor_grad(&[p1, p2], &mut g);
        assert!((g[0] - (1.0 - 2.0 * p2)).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_and_its_gradient() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
        let s = sigmoid(0.3);
        let fd = (sigmoid(0.3 + 1e-3) - sigmoid(0.3 - 1e-3)) / 2e-3;
        assert!((sigmoid_grad_from_output(s) - fd).abs() < 1e-3);
    }

    #[test]
    fn l2_loss_gradient_sign() {
        let (l, g) = l2_loss_and_grad(0.8, 1.0);
        assert!(l > 0.0 && g < 0.0);
        let (l, g) = l2_loss_and_grad(0.8, 0.0);
        assert!(l > 0.0 && g > 0.0);
        let (l, _) = l2_loss_and_grad(1.0, 1.0);
        assert_eq!(l, 0.0);
    }

    #[test]
    fn clamp_prob_keeps_interior() {
        assert_eq!(clamp_prob(1.5, 1e-6), 1.0 - 1e-6);
        assert_eq!(clamp_prob(-0.2, 1e-6), 1e-6);
        assert_eq!(clamp_prob(0.4, 1e-6), 0.4);
    }

    #[test]
    fn embed_logit_keeps_saturated_logits_differentiable() {
        // At |v| = 100 the f32 sigmoid saturates exactly; the embedding pins
        // the output just inside the unit interval so σ'(p) stays non-zero.
        assert_eq!(embed_logit(100.0), 1.0 - PROB_EPS);
        assert_eq!(embed_logit(-100.0), PROB_EPS);
        assert!(sigmoid_grad_from_output(embed_logit(100.0)) > 0.0);
        assert!(sigmoid_grad_from_output(embed_logit(-100.0)) > 0.0);
        // Interior logits are the plain sigmoid.
        assert_eq!(embed_logit(0.3), sigmoid(0.3));
    }
}
