//! Differentiable (probabilistic) circuits with reverse-mode gradients.

use crate::{ops, Backend, BatchMatrix};

/// Index of a node inside a [`SoftCircuit`].
pub type NodeIdx = usize;

/// The function computed by a soft-circuit node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SoftGate {
    /// A learnable input: reads column `usize` of the input probability
    /// matrix.
    Input(usize),
    /// A constant probability (0.0 or 1.0 for Boolean constants).
    Const(f32),
    /// Identity.
    Buf,
    /// Soft NOT: `1 - p`.
    Not,
    /// Soft AND: `∏ pᵢ`.
    And,
    /// Soft OR: `1 - ∏ (1-pᵢ)`.
    Or,
    /// Complemented soft AND.
    Nand,
    /// Complemented soft OR.
    Nor,
    /// Soft XOR (pairwise fold of `a + b - 2ab`).
    Xor,
    /// Complemented soft XOR.
    Xnor,
}

/// A node: a gate plus its fan-in (indices of strictly earlier nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct SoftNode {
    /// The gate function.
    pub gate: SoftGate,
    /// Fan-in node indices (empty for `Input`/`Const`).
    pub fanin: Vec<NodeIdx>,
}

/// A topologically ordered differentiable circuit.
///
/// The circuit maps a batch of input probability rows to output probabilities
/// and provides the gradient of the ℓ2 loss between the outputs and their
/// constrained targets with respect to the inputs — exactly the model the
/// paper trains with gradient descent.
#[derive(Debug, Clone, Default)]
pub struct SoftCircuit {
    nodes: Vec<SoftNode>,
    num_inputs: usize,
    outputs: Vec<(NodeIdx, f32)>,
    max_fanin: usize,
}

impl SoftCircuit {
    /// Creates an empty circuit reading `num_inputs` input columns.
    pub fn new(num_inputs: usize) -> Self {
        SoftCircuit {
            nodes: Vec::new(),
            num_inputs,
            outputs: Vec::new(),
            max_fanin: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input columns the circuit reads.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The constrained outputs as `(node, target)` pairs.
    pub fn outputs(&self) -> &[(NodeIdx, f32)] {
        &self.outputs
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[SoftNode] {
        &self.nodes
    }

    /// The widest fan-in of any node (0 for a circuit of leaves).
    pub fn max_fanin(&self) -> usize {
        self.max_fanin
    }

    /// Adds a node reading input column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is outside `0..num_inputs`.
    pub fn input(&mut self, col: usize) -> NodeIdx {
        assert!(col < self.num_inputs, "input column out of range");
        self.push(SoftNode {
            gate: SoftGate::Input(col),
            fanin: Vec::new(),
        })
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: f32) -> NodeIdx {
        self.push(SoftNode {
            gate: SoftGate::Const(value),
            fanin: Vec::new(),
        })
    }

    /// Adds a gate node over existing nodes.
    ///
    /// # Panics
    ///
    /// Panics if the gate is `Input`/`Const` (use the dedicated methods), if a
    /// fan-in index is out of range, or if a unary gate has fan-in ≠ 1.
    pub fn gate(&mut self, gate: SoftGate, fanin: Vec<NodeIdx>) -> NodeIdx {
        assert!(
            !matches!(gate, SoftGate::Input(_) | SoftGate::Const(_)),
            "use input()/constant() for leaf nodes"
        );
        assert!(
            fanin.iter().all(|&f| f < self.nodes.len()),
            "fan-in index out of range"
        );
        if matches!(gate, SoftGate::Buf | SoftGate::Not) {
            assert_eq!(fanin.len(), 1, "unary gate must have exactly one input");
        }
        self.push(SoftNode { gate, fanin })
    }

    fn push(&mut self, node: SoftNode) -> NodeIdx {
        self.max_fanin = self.max_fanin.max(node.fanin.len());
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Constrains the output of `node` to `target` (0.0 or 1.0) in the loss.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn constrain(&mut self, node: NodeIdx, target: f32) {
        assert!(node < self.nodes.len(), "node out of range");
        self.outputs.push((node, target));
    }

    /// Forward pass for a single batch row, writing every node activation
    /// into `acts` (resized as needed).
    pub fn forward_single(&self, inputs: &[f32], acts: &mut Vec<f32>) {
        acts.clear();
        acts.resize(self.nodes.len(), 0.0);
        let mut fanin_buf = vec![0.0f32; self.max_fanin];
        for (i, node) in self.nodes.iter().enumerate() {
            let k = node.fanin.len();
            for (slot, &f) in fanin_buf.iter_mut().zip(node.fanin.iter()) {
                *slot = acts[f];
            }
            let ps = &fanin_buf[..k];
            acts[i] = match node.gate {
                SoftGate::Input(col) => inputs[col],
                SoftGate::Const(v) => v,
                SoftGate::Buf => ps[0],
                SoftGate::Not => ops::not(ps[0]),
                SoftGate::And => ops::and(ps),
                SoftGate::Or => ops::or(ps),
                SoftGate::Nand => ops::not(ops::and(ps)),
                SoftGate::Nor => ops::not(ops::or(ps)),
                SoftGate::Xor => ops::xor(ps),
                SoftGate::Xnor => ops::xnor(ps),
            };
        }
    }

    /// Loss and input gradient for one batch row.
    ///
    /// `grad_inputs` (length `num_inputs`) receives `∂L/∂p` for each input
    /// column; the return value is the summed ℓ2 loss over the constrained
    /// outputs.
    pub fn loss_and_grad_single(&self, inputs: &[f32], grad_inputs: &mut [f32]) -> f64 {
        let n = self.nodes.len();
        let mut acts = Vec::with_capacity(n);
        self.forward_single(inputs, &mut acts);

        let mut node_grad = vec![0.0f32; n];
        let mut loss = 0.0f64;
        for &(node, target) in &self.outputs {
            let (l, g) = ops::l2_loss_and_grad(acts[node], target);
            loss += l as f64;
            node_grad[node] += g;
        }

        for g in grad_inputs.iter_mut() {
            *g = 0.0;
        }
        let mut fanin_p = vec![0.0f32; self.max_fanin];
        let mut fanin_g = vec![0.0f32; self.max_fanin];
        for i in (0..n).rev() {
            let g = node_grad[i];
            if g == 0.0 {
                continue;
            }
            let node = &self.nodes[i];
            let k = node.fanin.len();
            match node.gate {
                SoftGate::Input(col) => {
                    grad_inputs[col] += g;
                    continue;
                }
                SoftGate::Const(_) => continue,
                SoftGate::Buf => {
                    node_grad[node.fanin[0]] += g;
                    continue;
                }
                SoftGate::Not => {
                    node_grad[node.fanin[0]] -= g;
                    continue;
                }
                _ => {}
            }
            for (slot, &f) in fanin_p.iter_mut().zip(node.fanin.iter()) {
                *slot = acts[f];
            }
            let ps = &fanin_p[..k];
            let gs = &mut fanin_g[..k];
            let sign = match node.gate {
                SoftGate::And => {
                    ops::and_grad(ps, gs);
                    1.0
                }
                SoftGate::Nand => {
                    ops::and_grad(ps, gs);
                    -1.0
                }
                SoftGate::Or => {
                    ops::or_grad(ps, gs);
                    1.0
                }
                SoftGate::Nor => {
                    ops::or_grad(ps, gs);
                    -1.0
                }
                SoftGate::Xor => {
                    ops::xor_grad(ps, gs);
                    1.0
                }
                SoftGate::Xnor => {
                    ops::xor_grad(ps, gs);
                    -1.0
                }
                _ => unreachable!("leaf and unary gates handled above"),
            };
            for (idx, &f) in node.fanin.iter().enumerate() {
                node_grad[f] += sign * g * gs[idx];
            }
        }
        loss
    }

    /// Batched loss and input gradients.
    ///
    /// `probs` has shape `[batch, num_inputs]`; the returned gradient matrix
    /// has the same shape and the returned loss is summed over the whole
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if `probs.width() != num_inputs`.
    pub fn loss_and_input_grads(
        &self,
        probs: &BatchMatrix,
        backend: Backend,
    ) -> (f64, BatchMatrix) {
        assert_eq!(probs.width(), self.num_inputs, "input width mismatch");
        let batch = probs.batch();
        let mut grads = BatchMatrix::zeros(batch, self.num_inputs);
        if self.num_inputs == 0 {
            // Degenerate circuit with no learnable inputs: every batch row
            // sees the identical constant loss, so run the forward pass once
            // and scale instead of re-evaluating per row.
            let mut scratch = Vec::new();
            self.forward_single(&[], &mut scratch);
            let per_row: f64 = self
                .outputs
                .iter()
                .map(|&(n, t)| ops::l2_loss_and_grad(scratch[n], t).0 as f64)
                .sum();
            return (per_row * batch as f64, grads);
        }
        let loss = backend.for_each_row(
            grads.as_mut_slice(),
            self.num_inputs,
            |row_idx, grad_row| self.loss_and_grad_single(probs.row(row_idx), grad_row),
        );
        (loss, grads)
    }

    /// Forward pass over a batch, returning the constrained-output
    /// probabilities with shape `[batch, outputs.len()]`.
    ///
    /// # Panics
    ///
    /// Panics if `probs.width() != num_inputs`.
    pub fn forward_outputs(&self, probs: &BatchMatrix, backend: Backend) -> BatchMatrix {
        assert_eq!(probs.width(), self.num_inputs, "input width mismatch");
        // Write each result row straight into the output matrix (no
        // intermediate Vec<Vec<f32>>, no copy pass); the activation scratch
        // is a per-worker workspace reused across rows.
        let width = self.outputs.len();
        let mut out = BatchMatrix::zeros(probs.batch(), width);
        backend.for_each_row_with(
            out.as_mut_slice(),
            width,
            Vec::new,
            |b, out_row, acts: &mut Vec<f32>| {
                self.forward_single(probs.row(b), acts);
                for (slot, &(node, _)) in out_row.iter_mut().zip(self.outputs.iter()) {
                    *slot = acts[node];
                }
                0.0
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// out = (a AND b) OR (NOT a AND c), constrained to 1 — a soft 2:1 mux.
    fn mux_circuit() -> SoftCircuit {
        let mut c = SoftCircuit::new(3);
        let a = c.input(0);
        let b = c.input(1);
        let x = c.input(2);
        let na = c.gate(SoftGate::Not, vec![a]);
        let t1 = c.gate(SoftGate::And, vec![a, b]);
        let t2 = c.gate(SoftGate::And, vec![na, x]);
        let out = c.gate(SoftGate::Or, vec![t1, t2]);
        c.constrain(out, 1.0);
        c
    }

    #[test]
    fn forward_matches_boolean_semantics_at_corners() {
        let c = mux_circuit();
        let mut acts = Vec::new();
        for bits in 0..8u32 {
            let inputs: Vec<f32> = (0..3).map(|i| ((bits >> i) & 1) as f32).collect();
            c.forward_single(&inputs, &mut acts);
            let (a, b, x) = (inputs[0] > 0.5, inputs[1] > 0.5, inputs[2] > 0.5);
            let expected = if a { b } else { x };
            let out = acts[c.outputs()[0].0];
            assert_eq!(out > 0.5, expected, "inputs {inputs:?}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let c = mux_circuit();
        let inputs = vec![0.4f32, 0.7, 0.2];
        let mut grads = vec![0.0f32; 3];
        let loss = c.loss_and_grad_single(&inputs, &mut grads);
        assert!(loss > 0.0);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut plus = inputs.clone();
            plus[i] += h;
            let mut minus = inputs.clone();
            minus[i] -= h;
            let mut scratch = vec![0.0f32; 3];
            let lp = c.loss_and_grad_single(&plus, &mut scratch);
            let lm = c.loss_and_grad_single(&minus, &mut scratch);
            let fd = ((lp - lm) / (2.0 * h as f64)) as f32;
            assert!(
                (grads[i] - fd).abs() < 1e-2,
                "i={i}: {} vs {}",
                grads[i],
                fd
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let c = mux_circuit();
        let mut probs = BatchMatrix::filled(4, 3, 0.5);
        let (initial, _) = c.loss_and_input_grads(&probs, Backend::Sequential);
        for _ in 0..20 {
            let (_, grads) = c.loss_and_input_grads(&probs, Backend::Sequential);
            probs.saxpy_neg(0.2, &grads);
            probs.map_inplace(|v| v.clamp(0.0, 1.0));
        }
        let (final_loss, _) = c.loss_and_input_grads(&probs, Backend::Sequential);
        assert!(final_loss < initial, "{final_loss} should be < {initial}");
    }

    #[test]
    fn sequential_and_parallel_backends_agree() {
        let c = mux_circuit();
        let probs = BatchMatrix::from_fn(16, 3, |b, w| ((b * 3 + w) % 10) as f32 / 10.0);
        let (l1, g1) = c.loss_and_input_grads(&probs, Backend::Sequential);
        let (l2, g2) = c.loss_and_input_grads(&probs, Backend::DataParallel);
        assert!((l1 - l2).abs() < 1e-9);
        assert_eq!(g1.as_slice(), g2.as_slice());
    }

    #[test]
    fn forward_outputs_shape() {
        let c = mux_circuit();
        let probs = BatchMatrix::filled(5, 3, 0.5);
        let out = c.forward_outputs(&probs, Backend::DataParallel);
        assert_eq!(out.batch(), 5);
        assert_eq!(out.width(), 1);
    }

    #[test]
    fn forward_outputs_values_match_forward_single_on_every_backend() {
        let c = mux_circuit();
        let probs = BatchMatrix::from_fn(9, 3, |b, w| ((b * 5 + w * 2) % 11) as f32 / 11.0);
        let mut acts = Vec::new();
        for backend in [
            Backend::Sequential,
            Backend::Threads(4),
            Backend::DataParallel,
        ] {
            let out = c.forward_outputs(&probs, backend);
            for b in 0..probs.batch() {
                c.forward_single(probs.row(b), &mut acts);
                for (o, &(node, _)) in c.outputs().iter().enumerate() {
                    assert_eq!(out.get(b, o), acts[node], "backend {backend:?} row {b}");
                }
            }
        }
    }

    #[test]
    fn xor_and_xnor_nodes_backprop() {
        let mut c = SoftCircuit::new(2);
        let a = c.input(0);
        let b = c.input(1);
        let x = c.gate(SoftGate::Xor, vec![a, b]);
        let y = c.gate(SoftGate::Xnor, vec![a, b]);
        c.constrain(x, 1.0);
        c.constrain(y, 0.0);
        let inputs = vec![0.3f32, 0.6];
        let mut grads = vec![0.0f32; 2];
        let loss = c.loss_and_grad_single(&inputs, &mut grads);
        assert!(loss > 0.0);
        assert!(grads.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn constant_nodes_block_gradient() {
        let mut c = SoftCircuit::new(1);
        let a = c.input(0);
        let k = c.constant(0.0);
        let g = c.gate(SoftGate::And, vec![a, k]);
        c.constrain(g, 1.0);
        let mut grads = vec![0.0f32; 1];
        let loss = c.loss_and_grad_single(&[0.9], &mut grads);
        assert!(loss > 0.9); // output stuck at 0, target 1
        assert_eq!(grads[0], 0.0); // ∂(a·0)/∂a = 0
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn batched_call_rejects_wrong_width() {
        let c = mux_circuit();
        let probs = BatchMatrix::zeros(2, 2);
        let _ = c.loss_and_input_grads(&probs, Backend::Sequential);
    }

    #[test]
    fn circuit_with_no_inputs_reports_constant_loss() {
        let mut c = SoftCircuit::new(0);
        let k = c.constant(1.0);
        c.constrain(k, 0.0);
        let probs = BatchMatrix::zeros(3, 0);
        let (loss, grads) = c.loss_and_input_grads(&probs, Backend::Sequential);
        assert!((loss - 3.0).abs() < 1e-9);
        assert_eq!(grads.width(), 0);
    }
}
