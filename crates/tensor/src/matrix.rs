//! Dense batched matrices.

use std::fmt;

/// A dense, row-major `f32` matrix of shape `[batch, width]`.
///
/// Each row holds the values of one independent batch element — in the
/// sampler, one candidate assignment's input logits or probabilities.
#[derive(Clone, PartialEq)]
pub struct BatchMatrix {
    data: Vec<f32>,
    batch: usize,
    width: usize,
}

impl BatchMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(batch: usize, width: usize) -> Self {
        Self::filled(batch, width, 0.0)
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(batch: usize, width: usize, value: f32) -> Self {
        BatchMatrix {
            data: vec![value; batch * width],
            batch,
            width,
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != batch * width`.
    pub fn from_vec(batch: usize, width: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            batch * width,
            "data length must be batch * width"
        );
        BatchMatrix { data, batch, width }
    }

    /// Creates a matrix by calling `f(batch_index, column)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(batch: usize, width: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(batch * width);
        for b in 0..batch {
            for w in 0..width {
                data.push(f(b, w));
            }
        }
        BatchMatrix { data, batch, width }
    }

    /// Number of rows (batch elements).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.width + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.width + col] = value;
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.width..(row + 1) * self.width]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.width..(row + 1) * self.width]
    }

    /// View of the whole buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the whole buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Splits the buffer into non-overlapping mutable rows, convenient for
    /// data-parallel iteration.
    pub fn rows_mut(&mut self) -> std::slice::ChunksMut<'_, f32> {
        self.data.chunks_mut(self.width)
    }

    /// Immutable row iterator.
    pub fn rows(&self) -> std::slice::Chunks<'_, f32> {
        self.data.chunks(self.width)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32 + Sync>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise `self -= scale * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn saxpy_neg(&mut self, scale: f32, other: &BatchMatrix) {
        assert_eq!(self.batch, other.batch, "batch mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= scale * b;
        }
    }

    /// Memory footprint of the value buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for BatchMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BatchMatrix[{}x{}]", self.batch, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut m = BatchMatrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_fn_fills_in_row_major_order() {
        let m = BatchMatrix::from_fn(2, 2, |b, w| (b * 10 + w) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "batch * width")]
    fn from_vec_rejects_wrong_length() {
        let _ = BatchMatrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn saxpy_neg_updates_in_place() {
        let mut a = BatchMatrix::filled(1, 2, 1.0);
        let g = BatchMatrix::filled(1, 2, 0.5);
        a.saxpy_neg(2.0, &g);
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut a = BatchMatrix::filled(2, 2, 2.0);
        a.map_inplace(|v| v * v);
        assert!(a.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn bytes_reports_buffer_size() {
        let m = BatchMatrix::zeros(10, 7);
        assert_eq!(m.bytes(), 10 * 7 * 4);
    }
}
