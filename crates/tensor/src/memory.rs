//! Memory-usage model for the batched sampler.
//!
//! The paper's Fig. 3 (right) plots GPU memory usage versus batch size for a
//! subset of instances, observing that memory grows with both the complexity
//! of the transformed Boolean function and the batch size. This module models
//! the same quantity for the workspace-based execution model of
//! [`FlatKernel`](crate::FlatKernel):
//!
//! * **Persistent buffers** scale with the batch: the logit matrix
//!   `[batch, inputs]` the gradient-descent loop updates in place, plus one
//!   hardened bit per input per row.
//! * **Workspaces** scale with the worker count, *not* the batch: each pool
//!   worker owns one [`Workspace`](crate::Workspace) per parallel region
//!   (probabilities, input gradients, node activations, node gradients and
//!   fan-in scratch), reused for every row it claims.
//!
//! This is the key difference from a GPU resident-activation model (and
//! from this crate's pre-flat-kernel execution model): activations cost
//! `workers × nodes`, not `batch × nodes`, so circuit complexity no longer
//! multiplies the batch size.

/// Memory model of one gradient-descent sampling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Number of learnable input columns.
    pub num_inputs: usize,
    /// Number of circuit nodes.
    pub num_nodes: usize,
    /// Batch size.
    pub batch: usize,
    /// Worker threads holding a live workspace (1 for sequential).
    pub workers: usize,
    /// Widest gate fan-in (sizes the per-workspace gather scratch).
    pub max_fanin: usize,
    /// Extra `[batch, inputs]` f32 matrices resident during a step — 0 for
    /// the fused flat kernel; 2 for the staged reference path (the cloned
    /// probability matrix and the gradient matrix).
    pub staged_matrices: usize,
}

impl MemoryModel {
    /// Creates a model for a circuit of `num_nodes` nodes with `num_inputs`
    /// learnable inputs at the given batch size, assuming one worker and no
    /// fan-in scratch. Refine with [`MemoryModel::with_workers`] and
    /// [`MemoryModel::with_max_fanin`].
    pub fn new(num_inputs: usize, num_nodes: usize, batch: usize) -> Self {
        MemoryModel {
            num_inputs,
            num_nodes,
            batch,
            workers: 1,
            max_fanin: 0,
            staged_matrices: 0,
        }
    }

    /// Sets the worker count whose workspaces are resident simultaneously.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the widest fan-in of the modelled circuit.
    #[must_use]
    pub fn with_max_fanin(mut self, max_fanin: usize) -> Self {
        self.max_fanin = max_fanin;
        self
    }

    /// Sets how many extra `[batch, inputs]` matrices the execution form
    /// keeps resident (0 = fused flat kernel, 2 = staged reference path).
    #[must_use]
    pub fn with_staged_matrices(mut self, staged_matrices: usize) -> Self {
        self.staged_matrices = staged_matrices;
        self
    }

    /// Bytes of the execution form's extra batch-wide staging matrices
    /// (zero on the fused path).
    pub fn staged_bytes(&self) -> u64 {
        self.staged_matrices as u64 * self.batch as u64 * self.num_inputs as u64 * 4
    }

    /// Bytes used by persistent batch-wide buffers: the in-place logit
    /// matrix (`[batch, inputs]` f32) plus the hardened bit per entry.
    pub fn persistent_bytes(&self) -> u64 {
        let cells = self.batch as u64 * self.num_inputs as u64;
        cells * 4 + cells
    }

    /// Bytes used by the per-worker workspaces: per worker, two
    /// input-width rows (probabilities and input gradients), two node-width
    /// buffers (activations and node gradients) and two fan-in gather
    /// buffers, all f32 — independent of the batch size.
    pub fn workspace_bytes(&self) -> u64 {
        let per_worker =
            2 * (self.num_inputs as u64 + self.num_nodes as u64 + self.max_fanin as u64);
        self.workers as u64 * per_worker * 4
    }

    /// Total modelled bytes.
    pub fn total_bytes(&self) -> u64 {
        self.persistent_bytes() + self.staged_bytes() + self.workspace_bytes()
    }

    /// Total modelled mebibytes, the unit used in the paper's figure.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistent_memory_grows_linearly_with_batch() {
        let small = MemoryModel::new(100, 1000, 1_000);
        let large = MemoryModel::new(100, 1000, 10_000);
        let ratio = large.persistent_bytes() as f64 / small.persistent_bytes() as f64;
        assert!((ratio - 10.0).abs() < 1e-9);
        assert!(large.total_bytes() > small.total_bytes());
    }

    #[test]
    fn workspaces_scale_with_workers_not_batch() {
        let one = MemoryModel::new(100, 1000, 1_000).with_workers(1);
        let eight = MemoryModel::new(100, 1000, 1_000).with_workers(8);
        assert_eq!(eight.workspace_bytes(), 8 * one.workspace_bytes());
        let huge_batch = MemoryModel::new(100, 1000, 1_000_000).with_workers(8);
        assert_eq!(huge_batch.workspace_bytes(), eight.workspace_bytes());
    }

    #[test]
    fn memory_grows_with_circuit_size() {
        let small = MemoryModel::new(100, 1_000, 1_000);
        let large = MemoryModel::new(100, 50_000, 1_000);
        assert!(large.total_bytes() > small.total_bytes());
    }

    #[test]
    fn fanin_scratch_is_counted() {
        let narrow = MemoryModel::new(10, 100, 10).with_max_fanin(2);
        let wide = MemoryModel::new(10, 100, 10).with_max_fanin(64);
        assert!(wide.workspace_bytes() > narrow.workspace_bytes());
    }

    #[test]
    fn component_breakdown_sums_to_total() {
        let m = MemoryModel::new(64, 256, 128)
            .with_workers(4)
            .with_max_fanin(8)
            .with_staged_matrices(2);
        assert_eq!(
            m.total_bytes(),
            m.persistent_bytes() + m.staged_bytes() + m.workspace_bytes()
        );
        assert!(m.total_mib() > 0.0);
    }

    #[test]
    fn staged_reference_path_costs_more_than_the_fused_path() {
        let fused = MemoryModel::new(100, 1000, 512);
        let staged = MemoryModel::new(100, 1000, 512).with_staged_matrices(2);
        assert_eq!(fused.staged_bytes(), 0);
        assert_eq!(staged.staged_bytes(), 2 * 512 * 100 * 4);
        assert!(staged.total_bytes() > fused.total_bytes());
    }

    #[test]
    fn zero_batch_keeps_only_workspaces() {
        let m = MemoryModel::new(10, 10, 0).with_workers(2);
        assert_eq!(m.persistent_bytes(), 0);
        assert_eq!(m.total_bytes(), m.workspace_bytes());
    }
}
