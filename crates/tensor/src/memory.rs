//! Memory-usage model for the batched sampler.
//!
//! The paper's Fig. 3 (right) plots GPU memory usage versus batch size for a
//! subset of instances, observing that memory grows with both the complexity
//! of the transformed Boolean function and the batch size. This module models
//! the same quantity for our backend: the buffers a training step allocates
//! are the input logits, the input probabilities, their gradients, and the
//! per-batch-element node activations and node gradients.

/// Memory model of one gradient-descent sampling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Number of learnable input columns.
    pub num_inputs: usize,
    /// Number of circuit nodes.
    pub num_nodes: usize,
    /// Batch size.
    pub batch: usize,
}

impl MemoryModel {
    /// Creates a model for a circuit of `num_nodes` nodes with `num_inputs`
    /// learnable inputs at the given batch size.
    pub fn new(num_inputs: usize, num_nodes: usize, batch: usize) -> Self {
        MemoryModel {
            num_inputs,
            num_nodes,
            batch,
        }
    }

    /// Bytes used by persistent batch-wide buffers (logits, probabilities and
    /// input gradients).
    pub fn persistent_bytes(&self) -> u64 {
        // V (logits), P (probabilities), dL/dP — three [batch, inputs] f32
        // matrices — plus the hardened bit matrix (1 byte per entry).
        let f32s = 3u64 * self.batch as u64 * self.num_inputs as u64;
        f32s * 4 + self.batch as u64 * self.num_inputs as u64
    }

    /// Bytes used by transient per-batch-element buffers (node activations
    /// and node gradients), summed over the whole batch as a GPU would hold
    /// them resident simultaneously.
    pub fn activation_bytes(&self) -> u64 {
        2u64 * self.batch as u64 * self.num_nodes as u64 * 4
    }

    /// Total modelled bytes.
    pub fn total_bytes(&self) -> u64 {
        self.persistent_bytes() + self.activation_bytes()
    }

    /// Total modelled mebibytes, the unit used in the paper's figure.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grows_linearly_with_batch() {
        let small = MemoryModel::new(100, 1000, 1_000);
        let large = MemoryModel::new(100, 1000, 10_000);
        let ratio = large.total_bytes() as f64 / small.total_bytes() as f64;
        assert!((ratio - 10.0).abs() < 0.01);
    }

    #[test]
    fn memory_grows_with_circuit_size() {
        let small = MemoryModel::new(100, 1_000, 1_000);
        let large = MemoryModel::new(100, 50_000, 1_000);
        assert!(large.total_bytes() > small.total_bytes());
    }

    #[test]
    fn component_breakdown_sums_to_total() {
        let m = MemoryModel::new(64, 256, 128);
        assert_eq!(m.total_bytes(), m.persistent_bytes() + m.activation_bytes());
        assert!(m.total_mib() > 0.0);
    }

    #[test]
    fn zero_batch_uses_no_memory() {
        let m = MemoryModel::new(10, 10, 0);
        assert_eq!(m.total_bytes(), 0);
    }
}
