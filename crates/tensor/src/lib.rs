//! # htsat-tensor
//!
//! Batched tensor engine and differentiable (probabilistic) circuit
//! evaluation for the high-throughput SAT sampling library.
//!
//! The paper relaxes every logic gate of the transformed circuit into its
//! probabilistic counterpart (Table I), turning the circuit into a
//! differentiable model mapping input probabilities to output probabilities,
//! and drives a *batch* of independent candidate assignments towards
//! satisfying solutions with plain gradient descent. The reference
//! implementation uses PyTorch on NVIDIA V100 GPUs; this crate provides the
//! equivalent substrate in pure Rust:
//!
//! * [`BatchMatrix`] — a dense row-major `[batch, width]` `f32` matrix,
//! * [`ops`] — the soft gate forward rules and their derivatives,
//! * [`SoftCircuit`] — a topologically ordered differentiable circuit with a
//!   reverse-mode gradient pass per batch element (the reference
//!   implementation),
//! * [`FlatKernel`] / [`Workspace`] — the same circuit compiled once into a
//!   CSR-style flat layout, executing the sampler's fused
//!   sigmoid + forward + backward + descent step with zero allocations per
//!   row out of reusable per-worker workspaces,
//! * [`Sgd`] / [`Adam`] — optimizers updating the input logits,
//! * [`Backend`] — `Sequential` (the paper's CPU baseline), `Threads(n)`
//!   (the [`htsat_runtime`] thread pool across the batch, standing in for
//!   the GPU) or `DataParallel` (the rayon API, kept for compatibility),
//! * [`MemoryModel`] — the memory-usage model behind the paper's Fig. 3.
//!
//! # Example
//!
//! ```
//! use htsat_tensor::{Backend, BatchMatrix, SoftCircuit, SoftGate};
//!
//! // A circuit computing `out = a AND b`, constrained to 1.
//! let mut circuit = SoftCircuit::new(2);
//! let a = circuit.input(0);
//! let b = circuit.input(1);
//! let g = circuit.gate(SoftGate::And, vec![a, b]);
//! circuit.constrain(g, 1.0);
//!
//! let probs = BatchMatrix::filled(1, 2, 0.9);
//! let (loss, _grads) = circuit.loss_and_input_grads(&probs, Backend::Sequential);
//! assert!(loss < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod circuit;
mod flat;
mod matrix;
mod memory;
pub mod ops;
mod optim;

pub use backend::Backend;
pub use circuit::{NodeIdx, SoftCircuit, SoftGate, SoftNode};
pub use flat::{FlatKernel, Workspace};
pub use matrix::BatchMatrix;
pub use memory::MemoryModel;
pub use optim::{Adam, Optimizer, Sgd};
