//! Execution backends: sequential (CPU) or data-parallel (GPU stand-in).

use rayon::prelude::*;

/// How batch elements are processed.
///
/// The paper's ablation (Fig. 4, left) compares GPU execution against CPU
/// execution of the same sampler. On a CPU-only machine we reproduce the
/// comparison as `DataParallel` (all cores, rayon work stealing, one batch
/// element per task — the same independence the GPU exploits) versus
/// `Sequential` (a single core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Process batch elements one after another on the calling thread.
    Sequential,
    /// Process batch elements concurrently across all available cores.
    #[default]
    DataParallel,
}

impl Backend {
    /// Runs `f(batch_index, row)` over every row of a mutable row-chunked
    /// buffer, sequentially or in parallel according to the backend, and sums
    /// the returned values.
    pub fn for_each_row<F>(self, rows: &mut [f32], width: usize, f: F) -> f64
    where
        F: Fn(usize, &mut [f32]) -> f64 + Sync + Send,
    {
        if width == 0 {
            return 0.0;
        }
        match self {
            Backend::Sequential => rows
                .chunks_mut(width)
                .enumerate()
                .map(|(i, row)| f(i, row))
                .sum(),
            Backend::DataParallel => rows
                .par_chunks_mut(width)
                .enumerate()
                .map(|(i, row)| f(i, row))
                .sum(),
        }
    }

    /// Maps `f` over the indices `0..n`, sequentially or in parallel, and
    /// collects the results in index order.
    pub fn map_indices<T, F>(self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        match self {
            Backend::Sequential => (0..n).map(f).collect(),
            Backend::DataParallel => (0..n).into_par_iter().map(f).collect(),
        }
    }

    /// A short human-readable label, used in benchmark reports.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sequential => "cpu-sequential",
            Backend::DataParallel => "data-parallel",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_produce_identical_results() {
        let n = 257;
        let seq = Backend::Sequential.map_indices(n, |i| i * i);
        let par = Backend::DataParallel.map_indices(n, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_row_sums_and_mutates() {
        let width = 4;
        let mut a = vec![1.0f32; 3 * width];
        let mut b = a.clone();
        let total_seq = Backend::Sequential.for_each_row(&mut a, width, |i, row| {
            row[0] = i as f32;
            row.iter().map(|&v| v as f64).sum()
        });
        let total_par = Backend::DataParallel.for_each_row(&mut b, width, |i, row| {
            row[0] = i as f32;
            row.iter().map(|&v| v as f64).sum()
        });
        assert_eq!(a, b);
        assert!((total_seq - total_par).abs() < 1e-9);
    }

    #[test]
    fn zero_width_is_a_no_op() {
        let mut empty: Vec<f32> = Vec::new();
        assert_eq!(
            Backend::DataParallel.for_each_row(&mut empty, 0, |_, _| 1.0),
            0.0
        );
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Backend::Sequential.label(), Backend::DataParallel.label());
    }
}
