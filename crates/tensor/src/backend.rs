//! Execution backends: how batch elements are scheduled onto cores.

use htsat_runtime::{Executor, SequentialExecutor, ThreadPool};
use rayon::prelude::*;

/// How batch elements are processed.
///
/// The paper's ablation (Fig. 4, left) compares GPU execution against CPU
/// execution of the same sampler. On a CPU-only machine the GPU's role — one
/// independent task per batch element — is played by a thread pool. Each
/// variant documents what it *actually* dispatches to:
///
/// * [`Backend::Sequential`] — every batch element on the calling thread, in
///   index order. The paper's CPU baseline.
/// * [`Backend::Threads`] — the [`htsat_runtime::ThreadPool`] scoped
///   work-stealing pool with the given worker count (`0` = one worker per
///   available core). This is the real parallel path and the default.
/// * [`Backend::DataParallel`] — the `rayon` parallel-iterator API, kept for
///   compatibility with builds that point `[workspace.dependencies] rayon`
///   at crates.io. **With the vendored rayon stub this executes
///   sequentially** (the stub's `par_*` adaptors are the standard-library
///   iterators); use [`Backend::Threads`] for real parallelism in offline
///   builds.
///
/// Every backend observes the same contract: per-row kernels run exactly
/// once per row and [`Backend::map_indices`] preserves index order, so for a
/// pure kernel the choice of backend (and thread count) never changes the
/// result — only the wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Process batch elements one after another on the calling thread.
    Sequential,
    /// Process batch elements on the htsat-runtime thread pool with this
    /// many workers; `0` sizes the pool to the available hardware threads.
    Threads(usize),
    /// Process batch elements through the `rayon` API. Parallel with the
    /// real rayon crate; sequential with the vendored offline stub.
    DataParallel,
}

impl Default for Backend {
    /// The default backend is the thread pool sized to the machine
    /// (`Threads(0)`).
    fn default() -> Self {
        Backend::Threads(0)
    }
}

impl Backend {
    /// The thread pool sized to the available hardware parallelism.
    #[must_use]
    pub fn auto() -> Self {
        Backend::Threads(0)
    }

    /// Number of worker threads this backend resolves to on this machine.
    #[must_use]
    pub fn effective_threads(self) -> usize {
        match self {
            Backend::Sequential => 1,
            Backend::Threads(n) => ThreadPool::new(n).threads(),
            // The vendored stub reports 1; the real rayon reports the pool
            // size.
            Backend::DataParallel => rayon::current_num_threads(),
        }
    }

    /// Runs `f(batch_index, row)` over every row of a mutable row-chunked
    /// buffer, sequentially or in parallel according to the backend, and sums
    /// the returned values.
    pub fn for_each_row<F>(self, rows: &mut [f32], width: usize, f: F) -> f64
    where
        F: Fn(usize, &mut [f32]) -> f64 + Sync + Send,
    {
        if width == 0 {
            return 0.0;
        }
        match self {
            Backend::Sequential => SequentialExecutor.reduce_rows(rows, width, f),
            Backend::Threads(n) => ThreadPool::new(n).reduce_rows(rows, width, f),
            Backend::DataParallel => rows
                .par_chunks_mut(width)
                .enumerate()
                .map(|(i, row)| f(i, row))
                .sum(),
        }
    }

    /// Runs `f(batch_index, row, workspace)` over every row of a mutable
    /// row-chunked buffer and sums the returned values, building one
    /// workspace with `init` **per worker per parallel region** — the entry
    /// point for allocation-free kernels such as
    /// [`FlatKernel::fused_gd_step`](crate::FlatKernel::fused_gd_step).
    ///
    /// `Sequential` and `Threads` amortise the workspace across every row a
    /// worker claims. `DataParallel` builds a workspace per row (the rayon
    /// adaptor API offers no per-worker hook) — it remains correct, but use
    /// `Threads` for the allocation-free hot path.
    pub fn for_each_row_with<W, I, F>(self, rows: &mut [f32], width: usize, init: I, f: F) -> f64
    where
        W: Send,
        I: Fn() -> W + Sync + Send,
        F: Fn(usize, &mut [f32], &mut W) -> f64 + Sync + Send,
    {
        if width == 0 {
            return 0.0;
        }
        match self {
            Backend::Sequential => SequentialExecutor.reduce_rows_with(rows, width, init, f),
            Backend::Threads(n) => ThreadPool::new(n).reduce_rows_with(rows, width, init, f),
            Backend::DataParallel => rows
                .par_chunks_mut(width)
                .enumerate()
                .map(|(i, row)| {
                    let mut workspace = init();
                    f(i, row, &mut workspace)
                })
                .sum(),
        }
    }

    /// Maps `f` over the indices `0..n`, sequentially or in parallel, and
    /// collects the results in index order.
    pub fn map_indices<T, F>(self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        match self {
            Backend::Sequential => SequentialExecutor.map_indices(n, f),
            Backend::Threads(t) => ThreadPool::new(t).map_indices(n, f),
            Backend::DataParallel => (0..n).into_par_iter().map(f).collect(),
        }
    }

    /// A short human-readable label, used in benchmark reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Backend::Sequential => "cpu-sequential".to_string(),
            Backend::Threads(0) => format!("threads-auto({})", self.effective_threads()),
            Backend::Threads(n) => format!("threads-{n}"),
            Backend::DataParallel => "data-parallel".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Backend; 5] = [
        Backend::Sequential,
        Backend::Threads(0),
        Backend::Threads(2),
        Backend::Threads(8),
        Backend::DataParallel,
    ];

    #[test]
    fn all_backends_produce_identical_map_results() {
        let n = 257;
        let reference = Backend::Sequential.map_indices(n, |i| i * i);
        for backend in ALL {
            assert_eq!(
                backend.map_indices(n, |i| i * i),
                reference,
                "backend {backend:?}"
            );
        }
    }

    #[test]
    fn for_each_row_sums_and_mutates_identically_everywhere() {
        let width = 4;
        let mut reference = vec![1.0f32; 33 * width];
        let kernel = |i: usize, row: &mut [f32]| {
            row[0] = i as f32;
            row.iter().map(|&v| f64::from(v)).sum()
        };
        let expected = Backend::Sequential.for_each_row(&mut reference, width, kernel);
        for backend in ALL {
            let mut data = vec![1.0f32; 33 * width];
            let total = backend.for_each_row(&mut data, width, kernel);
            assert_eq!(data, reference, "backend {backend:?}");
            assert!((total - expected).abs() < 1e-9, "backend {backend:?}");
        }
    }

    #[test]
    fn for_each_row_with_agrees_with_for_each_row_everywhere() {
        let width = 3;
        let make = || vec![2.0f32; 17 * width];
        let mut reference = make();
        let expected = Backend::Sequential.for_each_row(&mut reference, width, |i, row| {
            row[0] = i as f32;
            row.iter().map(|&v| f64::from(v)).sum()
        });
        for backend in ALL {
            let mut data = make();
            let total = backend.for_each_row_with(
                &mut data,
                width,
                || vec![0.0f32; width],
                |i, row, scratch: &mut Vec<f32>| {
                    scratch[0] = i as f32;
                    row[0] = scratch[0];
                    row.iter().map(|&v| f64::from(v)).sum()
                },
            );
            assert_eq!(data, reference, "backend {backend:?}");
            assert!((total - expected).abs() < 1e-9, "backend {backend:?}");
        }
    }

    #[test]
    fn zero_width_is_a_no_op() {
        for backend in ALL {
            let mut empty: Vec<f32> = Vec::new();
            assert_eq!(backend.for_each_row(&mut empty, 0, |_, _| 1.0), 0.0);
            assert_eq!(
                backend.for_each_row_with(&mut empty, 0, || (), |_, _, ()| 1.0),
                0.0
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = ALL.iter().map(|b| b.label()).collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn default_is_the_auto_sized_pool() {
        assert_eq!(Backend::default(), Backend::auto());
        assert!(Backend::default().effective_threads() >= 1);
        assert_eq!(Backend::Threads(3).effective_threads(), 3);
        assert_eq!(Backend::Sequential.effective_threads(), 1);
    }
}
