//! # htsat-json
//!
//! A minimal hand-rolled JSON codec shared by the workspace.
//!
//! The workspace is deliberately std-only, so instead of serde this crate
//! implements the small JSON subset its consumers need: objects, arrays,
//! strings (with full escape handling including `\uXXXX` and surrogate
//! pairs), numbers, booleans and null. Object keys keep insertion order, so
//! encoded documents are deterministic — the same value always serializes
//! to the same bytes, which keeps golden tests, on-the-wire diffs and the
//! bench-artifact round-trip honest.
//!
//! Two consumers drive the design:
//!
//! * `htsat-serve` — the newline-delimited JSON wire protocol (this codec
//!   started life as its `json` module and is re-exported there unchanged),
//! * `htsat-bench` — the `BENCH_<host>_<date>.json` perf-trajectory
//!   artifacts, whose emit → parse → emit round trip must be byte-identical
//!   so committed reference artifacts diff cleanly.
//!
//! Parsing is strict where it matters for a network daemon (no trailing
//! garbage, depth-limited recursion so a hostile peer cannot overflow the
//! stack) and lenient where JSON itself is (any amount of whitespace between
//! tokens).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth accepted by the parser. Protocol messages are at
/// most ~3 levels deep; the limit only exists to bound recursion on hostile
/// input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, stored as `f64` (protocol integers stay exact up to
    /// 2^53, far beyond any counter this daemon reports).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order and duplicates keep the last
    /// occurrence on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (last duplicate wins). `None` for
    /// non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    ///
    /// The bound is strict: `u64::MAX as f64` rounds *up* to 2^64, so a
    /// `<=` comparison would accept 2^64 and saturate it to `u64::MAX` —
    /// silently turning an out-of-range value into a different in-range
    /// one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as array elements, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to its compact JSON text form.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // JSON has no NaN/Infinity; encode them as null rather than
                // emitting un-parseable text.
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: format!("invalid number `{text}`"),
            offset: start,
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Raw control characters are invalid inside JSON strings.
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte before pos.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_messages() {
        let msg = Json::obj(vec![
            ("cmd", "sample".into()),
            ("n", Json::Num(16.0)),
            ("seed", Json::Num(7.0)),
            ("solutions", Json::Arr(vec!["0101".into(), "1100".into()])),
            ("ok", true.into()),
            ("note", Json::Null),
        ]);
        let text = msg.encode();
        assert_eq!(Json::parse(&text).expect("parse"), msg);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(-3.0).encode(), "-3");
        assert_eq!(Json::Num(1.5).encode(), "1.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnl\nback\\slash",
            "héllo ✓",
        ] {
            let text = Json::Str(s.to_string()).encode();
            assert_eq!(
                Json::parse(&text).expect("parse"),
                Json::Str(s.to_string()),
                "input {s:?}"
            );
        }
    }

    #[test]
    fn unicode_escapes_are_decoded() {
        assert_eq!(
            Json::parse(r#""Aé""#).expect("parse"),
            Json::Str("Aé".to_string())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""😀""#).expect("parse"),
            Json::Str("\u{1f600}".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn control_characters_are_escaped_on_encode() {
        let text = Json::Str("\u{01}".to_string()).encode();
        assert_eq!(text, "\"\\u0001\"");
        assert_eq!(
            Json::parse(&text).expect("parse"),
            Json::Str("\u{01}".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "\u{7f}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v =
            Json::parse(r#"{"a": 1, "b": "x", "c": true, "d": [2, 3], "a": 9}"#).expect("parse");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(9), "last dup wins");
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        // u64::MAX as f64 rounds UP to 2^64: it must be rejected, not
        // saturated to a different in-range value.
        assert_eq!(Json::Num(u64::MAX as f64).as_u64(), None);
        assert_eq!(Json::Num((1u64 << 53) as f64).as_u64(), Some(1 << 53));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" \t{\n \"k\" : [ 1 , 2 ] \r}\n").expect("parse");
        assert_eq!(
            v.get("k").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
}
