//! End-to-end integration tests: instance generation → transformation →
//! sampling → validation against the original CNF, plus cross-sampler
//! agreement checks.

use htsat::baselines::{CmsGenLike, DiffSamplerLike, QuickSamplerLike, SatSampler, UniGenLike};
use htsat::cnf::dimacs;
use htsat::core::{transform, GdSampler, SamplerConfig};
use htsat::instances::families;
use htsat::instances::suite::{table2_instances, SuiteScale};
use htsat::solver::{dpll, CdclSolver, SolveResult};
use std::time::Duration;

#[test]
fn pipeline_works_on_every_small_table2_instance() {
    for instance in table2_instances(SuiteScale::Small) {
        let mut sampler = GdSampler::new(&instance.cnf, SamplerConfig::default())
            .unwrap_or_else(|e| panic!("transform failed for {}: {e}", instance.name));
        let report = sampler.sample(20, Duration::from_secs(20));
        assert!(
            !report.solutions.is_empty(),
            "no solutions sampled for {}",
            instance.name
        );
        for solution in &report.solutions {
            assert!(
                instance.cnf.is_satisfied_by_bits(solution),
                "invalid solution for {}",
                instance.name
            );
        }
    }
}

#[test]
fn transformation_preserves_satisfiability_verdict() {
    // Compare the CDCL verdict on the CNF against achievability of the
    // circuit's output constraints for a handful of generated instances.
    for seed in 0..4u64 {
        let instance = families::or_chain(&format!("or-check-{seed}"), 14, 2, seed);
        let result = transform(&instance.cnf).expect("transform");
        let sat = matches!(CdclSolver::new(&instance.cnf).solve(), SolveResult::Sat(_));
        assert!(sat, "generated instances are satisfiable by construction");
        // Find a satisfying input assignment by brute force over the PIs.
        let pis = result.primary_inputs();
        let n = pis.len().min(20);
        let mut found = false;
        for mask in 0..(1u64 << n) {
            let value_of = |v: htsat::cnf::Var| {
                pis.iter()
                    .position(|&p| p == v)
                    .map(|i| i < n && (mask >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            if result
                .netlist
                .outputs_satisfied(|v| value_of(htsat::cnf::Var::new(v)))
            {
                let bits = result.assignment_from_inputs(value_of, |_| false);
                assert!(instance.cnf.is_satisfied_by_bits(&bits));
                found = true;
                break;
            }
        }
        assert!(
            found,
            "constrained outputs must be achievable for a SAT instance"
        );
    }
}

#[test]
fn gd_sampler_and_baselines_agree_on_solution_validity() {
    let instance = families::qif_chain("integration-qif", 18, 3, 11);
    let cnf = &instance.cnf;
    let mut gd = GdSampler::new(cnf, SamplerConfig::default()).expect("transform");
    let gd_report = gd.sample(10, Duration::from_secs(15));
    assert!(!gd_report.solutions.is_empty());

    let mut samplers: Vec<Box<dyn SatSampler>> = vec![
        Box::new(CmsGenLike::new()),
        Box::new(UniGenLike::new()),
        Box::new(QuickSamplerLike::new()),
        Box::new(DiffSamplerLike::new()),
    ];
    for sampler in samplers.iter_mut() {
        let run = sampler.sample(cnf, 5, Duration::from_secs(15));
        assert!(
            !run.solutions.is_empty(),
            "{} found no solutions",
            sampler.name()
        );
        for s in &run.solutions {
            assert!(cnf.is_satisfied_by_bits(s), "{} invalid", sampler.name());
        }
    }
}

#[test]
fn sampled_solution_counts_never_exceed_model_count() {
    // On a formula small enough to count exhaustively, every sampler must
    // return at most the true number of models.
    let cnf = dimacs::parse_str("p cnf 5 5\n-1 -2 3 0\n1 -3 0\n2 -3 0\n3 4 5 0\n-4 -5 0\n")
        .expect("parse");
    let total = dpll::count_models_exhaustive(&cnf);
    assert!(total > 0);

    let mut gd = GdSampler::new(&cnf, SamplerConfig::default()).expect("transform");
    let report = gd.sample(total as usize * 2, Duration::from_secs(10));
    assert!(report.solutions.len() as u64 <= total);
    assert!(!report.solutions.is_empty());

    let run = CmsGenLike::new().sample(&cnf, total as usize * 2, Duration::from_secs(10));
    assert!(run.solutions.len() as u64 <= total);
}

#[test]
fn dimacs_files_round_trip_through_disk() {
    let instance = families::product("prod-io", 4, 3);
    let dir = std::env::temp_dir().join("htsat-integration");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("prod-io.cnf");
    dimacs::write_file(&instance.cnf, &path).expect("write");
    let reread = dimacs::read_file(&path).expect("read");
    assert_eq!(reread.num_clauses(), instance.cnf.num_clauses());
    assert_eq!(reread.num_vars(), instance.cnf.num_vars());
    std::fs::remove_file(&path).ok();
}

#[test]
fn ops_reduction_holds_across_families() {
    // The transformation should reduce the op count on every gate-structured
    // family (the paper reports an average reduction of about 4x).
    let instances = [
        families::or_chain("ops-or", 20, 2, 5),
        families::qif_chain("ops-qif", 18, 4, 5),
        families::iscas_like("ops-iscas", 24, 120, 3, 5),
        families::product("ops-prod", 5, 5),
    ];
    for instance in &instances {
        let result = transform(&instance.cnf).expect("transform");
        assert!(
            result.stats.ops_reduction() > 1.0,
            "{}: reduction {:.2}",
            instance.name,
            result.stats.ops_reduction()
        );
    }
}
